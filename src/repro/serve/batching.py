"""Request coalescing: the paper's job-ratio aggregation, applied to RPC.

The paper's §3 models stages that collect ``b_n`` input units before
dispatching one job, paying a collection latency ``b_n / R_alpha`` in
exchange for amortized per-job overhead.  The analysis server has the
same trade: each evaluation shipped to the worker pool pays a fixed
IPC/pickling cost, so *compatible* requests (same model document, same
evaluation options) arriving within a short window are coalesced into
one pool task that evaluates all their parameter points in a single
process.

The window is the knob from the paper's formula: a batch of ``n``
requests filling at admitted rate ``R_alpha`` takes ``n / R_alpha``
seconds to collect (:func:`recommended_window` delegates to
:func:`repro.streaming.jobratio.aggregation_latency`), and that
collection time is exactly the latency cost the batch adds — so the
operator picks the window as the latency budget they are willing to
spend on amortization, and ``/capacity``'s delay bound still holds as
long as the window is charged to the dispatch latency ``T``.
"""

from __future__ import annotations

import asyncio
import hashlib
from typing import Any, Awaitable, Callable, Mapping, Sequence

from ..streaming.jobratio import aggregation_latency
from ..sweep.cache import canonical_json
from ..sweep.runner import evaluate_point

__all__ = ["evaluate_batch", "recommended_window", "Coalescer"]

#: dispatch callback signature: (model, params list, options, seeds) -> results
DispatchFn = Callable[
    [Mapping[str, Any], Sequence[Mapping[str, Any]], Mapping[str, Any], Sequence[int]],
    Awaitable[Sequence[dict[str, Any]]],
]


def evaluate_batch(
    model: Mapping[str, Any],
    params_list: Sequence[Mapping[str, Any]],
    options: Mapping[str, Any],
    seeds: Sequence[int],
) -> list[dict[str, Any]]:
    """Evaluate several points of one model in a single worker task.

    Module-level so it pickles into the process pool; one IPC round
    trip covers the whole batch.  Per-point errors stay per-point
    (:func:`~repro.sweep.runner.evaluate_point` captures them), so one
    bad point cannot poison its batch-mates.
    """
    return [
        evaluate_point(model, params, options, seed)
        for params, seed in zip(params_list, seeds)
    ]


def recommended_window(batch_size: float, admitted_rate: float) -> float:
    """Collection time ``b_n / R_alpha`` for a batch — the paper's formula.

    The window that *just* fills a ``batch_size`` batch at the admitted
    request rate; any longer only adds latency, any shorter dispatches
    partial batches.
    """
    return aggregation_latency(batch_size, admitted_rate)


class _Pending:
    """One forming batch: the requests that joined, and their futures."""

    __slots__ = ("model", "options", "params_list", "seeds", "futures")

    def __init__(self, model: Mapping[str, Any], options: Mapping[str, Any]) -> None:
        self.model = model
        self.options = options
        self.params_list: list[Mapping[str, Any]] = []
        self.seeds: list[int] = []
        self.futures: list[asyncio.Future] = []


def batch_key(model: Mapping[str, Any], options: Mapping[str, Any]) -> str:
    """Compatibility class of a request: same model + same options."""
    payload = canonical_json({"model": dict(model), "options": dict(options)})
    return hashlib.sha256(payload.encode()).hexdigest()


class Coalescer:
    """Coalesces compatible evaluations arriving within a time window.

    ``submit`` parks each request on the forming batch for its
    compatibility class; the first request of a class starts the window
    timer, and when it expires (or the batch hits ``max_batch``) the
    whole batch goes to ``dispatch`` as one call.  A zero window
    degenerates to pass-through (batches of one, no timer, no added
    latency) — the safe default.
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        *,
        window_s: float = 0.0,
        max_batch: int = 16,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._dispatch = dispatch
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._pending: dict[str, _Pending] = {}
        self.batches = 0
        self.requests = 0
        self.coalesced = 0  # requests that shared a batch with at least one other
        self.max_batch_seen = 0

    async def submit(
        self,
        model: Mapping[str, Any],
        params: Mapping[str, Any],
        options: Mapping[str, Any],
        seed: int,
    ) -> dict[str, Any]:
        """Evaluate one point, possibly riding a coalesced batch."""
        self.requests += 1
        if self.window_s == 0.0:
            self._account(1)
            return (await self._dispatch(model, [params], options, [seed]))[0]
        key = batch_key(model, options)
        pending = self._pending.get(key)
        if pending is None:
            pending = _Pending(model, options)
            self._pending[key] = pending
            asyncio.get_running_loop().create_task(self._flush_after_window(key))
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        pending.params_list.append(params)
        pending.seeds.append(seed)
        pending.futures.append(fut)
        if len(pending.futures) >= self.max_batch:
            self._take(key)
            await self._run(pending)
        return await fut

    async def _flush_after_window(self, key: str) -> None:
        await asyncio.sleep(self.window_s)
        pending = self._take(key)
        if pending is not None:
            await self._run(pending)

    def _take(self, key: str) -> "_Pending | None":
        return self._pending.pop(key, None)

    def _account(self, size: int) -> None:
        self.batches += 1
        if size > 1:
            self.coalesced += size
        if size > self.max_batch_seen:
            self.max_batch_seen = size

    async def _run(self, pending: _Pending) -> None:
        self._account(len(pending.futures))
        try:
            results = await self._dispatch(
                pending.model, pending.params_list, pending.options, pending.seeds
            )
        except Exception as exc:  # noqa: BLE001 - fan the failure out to waiters
            for fut in pending.futures:
                if not fut.done():
                    fut.set_exception(exc)
            return
        for fut, result in zip(pending.futures, results):
            if not fut.done():
                fut.set_result(result)

    async def flush(self) -> None:
        """Dispatch every forming batch immediately (drain path)."""
        for key in list(self._pending):
            pending = self._take(key)
            if pending is not None:
                await self._run(pending)

    def stats(self) -> dict[str, Any]:
        """Coalescing effectiveness counters."""
        return {
            "window_s": self.window_s,
            "max_batch": self.max_batch,
            "requests": self.requests,
            "batches": self.batches,
            "coalesced_requests": self.coalesced,
            "max_batch_seen": self.max_batch_seen,
            "mean_batch_size": (self.requests / self.batches) if self.batches else None,
        }
