"""Wire protocol of the analysis service: newline-delimited JSON.

One request per line, one response per line, UTF-8, over any byte
stream (TCP here).  The frame is deliberately trivial — ``readline`` is
the framing — so clients exist in any language in a dozen lines, and a
session is inspectable with ``nc``/``socat``.

Request document::

    {"v": 1, "id": "r1", "op": "analyze",
     "model": {... pipeline model JSON ...},
     "params": {"scale:network": 2.0},
     "options": {"packetized": false, "workload_mib": 64, "seed": 42}}

``op`` is one of :data:`OPS`; ``model``/``params``/``options`` are
required only for the evaluation ops.  ``params`` uses the sweep axis
vocabulary (:mod:`repro.sweep.spec`), so a served evaluation is
bit-identical to — and shares cache entries with — the same point of a
``repro sweep`` run.

Response document::

    {"v": 1, "id": "r1", "ok": true, "status": 200, "result": {...}}
    {"v": 1, "id": "r1", "ok": false, "status": 429,
     "error": {"code": "rejected_rate", "message": "...", "retry_after_s": 0.5}}

``status`` follows HTTP semantics (400 malformed, 408 timeout, 413
oversize, 422 evaluation failed, 429 admission-rejected, 500 internal,
503 draining) without dragging in an HTTP stack.

Validation is strict and reuses :mod:`repro._validation`: unknown keys,
wrong types, and non-finite numbers are rejected with a 400 before any
work is scheduled — a malformed request must never reach the worker
pool.

Multi-tenancy (the cluster tier): every request may carry a ``tenant``
identity string.  A single server treats it as routing metadata (it
shows up in per-tenant counters); the cluster router additionally runs
per-tenant leaky-bucket admission against it.  The tenant-registry ops
``register_tenant`` (options ``rate``/``burst``/``slo_ms``) and
``tenants`` are answered only by the router — a plain shard returns 501
``cluster_only`` for them.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Mapping

from .._validation import check_finite, check_non_negative
from ..units import MiB

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "EVAL_OPS",
    "CLUSTER_OPS",
    "ProtocolError",
    "Request",
    "parse_request",
    "evaluation_options",
    "tenant_options",
    "encode",
    "ok_response",
    "error_response",
    "parse_response",
]

#: protocol schema version; bump on incompatible wire changes
PROTOCOL_VERSION = 1

#: hard cap on one request/response line (models are a few KiB; this
#: leaves ample headroom while bounding a hostile client's memory cost)
MAX_LINE_BYTES = 4 * 1024 * 1024

#: ops that evaluate a pipeline model on the worker pool
EVAL_OPS = ("analyze", "simulate", "sweep_point")

#: ops answered only by the cluster router (tenant registry)
CLUSTER_OPS = ("register_tenant", "tenants")

#: every operation the server understands
OPS = ("ping", "capacity", "stats", "shutdown") + CLUSTER_OPS + EVAL_OPS

_REQUEST_KEYS = {"v", "id", "op", "model", "params", "options", "tenant"}
_OPTION_KEYS = {"packetized", "workload_mib", "seed", "simulate"}
_TENANT_OPTION_KEYS = {"rate", "burst", "slo_ms"}
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ProtocolError(ValueError):
    """A request the server refuses before doing any work."""

    def __init__(self, message: str, *, status: int = 400, code: str = "bad_request") -> None:
        super().__init__(message)
        self.status = status
        self.code = code


@dataclass(frozen=True)
class Request:
    """A validated request, ready for dispatch."""

    op: str
    id: "str | int | None" = None
    model: "dict[str, Any] | None" = None
    params: dict[str, Any] = field(default_factory=dict)
    options: dict[str, Any] = field(default_factory=dict)
    tenant: "str | None" = None


def _check_params(params: Any) -> dict[str, Any]:
    if not isinstance(params, dict):
        raise ProtocolError(f"'params' must be an object, got {type(params).__name__}")
    out: dict[str, Any] = {}
    for key, value in params.items():
        if not isinstance(key, str):
            raise ProtocolError("'params' keys must be strings")
        if isinstance(value, bool) or not isinstance(value, (int, float, str)):
            raise ProtocolError(
                f"param {key!r} must be a number or string, got {type(value).__name__}"
            )
        if isinstance(value, (int, float)):
            try:
                check_finite(f"param {key!r}", value)
            except ValueError as exc:
                raise ProtocolError(str(exc)) from exc
        out[key] = value
    return out


def evaluation_options(raw: Mapping[str, Any], *, op: str) -> dict[str, Any]:
    """Normalize request options to the sweep evaluation-options shape.

    The returned dict — ``{"simulate", "packetized", "workload",
    "base_seed"}`` — is exactly what :func:`repro.sweep.runner.
    evaluate_point` consumes and what :func:`repro.sweep.cache.
    point_key` hashes, so served results are cache-compatible with
    sweep results.
    """
    unknown = set(raw) - _OPTION_KEYS
    if unknown:
        raise ProtocolError(f"unknown option(s) {sorted(unknown)}")
    if "simulate" in raw and op != "sweep_point":
        raise ProtocolError("option 'simulate' is only valid for op 'sweep_point'")
    simulate = {"analyze": False, "simulate": True}.get(op, raw.get("simulate", False))
    if not isinstance(simulate, bool):
        raise ProtocolError("option 'simulate' must be a boolean")
    packetized = raw.get("packetized", False)
    if not isinstance(packetized, bool):
        raise ProtocolError("option 'packetized' must be a boolean")
    workload = None
    if raw.get("workload_mib") is not None:
        wl = raw["workload_mib"]
        if isinstance(wl, bool) or not isinstance(wl, (int, float)):
            raise ProtocolError("option 'workload_mib' must be a number")
        try:
            check_non_negative("workload_mib", wl)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        workload = float(wl) * MiB if wl > 0 else None
    seed = raw.get("seed", 42)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ProtocolError("option 'seed' must be an integer")
    return {
        "simulate": simulate,
        "packetized": packetized,
        "workload": workload,
        "base_seed": seed,
    }


def _check_tenant(value: Any) -> "str | None":
    if value is None:
        return None
    if not isinstance(value, str):
        raise ProtocolError(f"'tenant' must be a string, got {type(value).__name__}")
    if not _TENANT_RE.match(value):
        raise ProtocolError(
            f"'tenant' {value!r} is invalid (1-64 chars of [A-Za-z0-9._-], "
            "starting alphanumeric)"
        )
    return value


def tenant_options(raw: Mapping[str, Any]) -> dict[str, Any]:
    """Validate ``register_tenant`` options into ``{rate, burst, slo_s}``.

    The tenant's declared leaky bucket: sustained ``rate`` requests/s
    and ``burst`` requests (both required, positive, finite), plus an
    optional per-tenant delay SLO in milliseconds.
    """
    unknown = set(raw) - _TENANT_OPTION_KEYS
    if unknown:
        raise ProtocolError(f"unknown option(s) {sorted(unknown)}")
    out: dict[str, Any] = {}
    for key in ("rate", "burst"):
        if key not in raw:
            raise ProtocolError(f"op 'register_tenant' requires option {key!r}")
        value = raw[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(f"option {key!r} must be a number")
        try:
            check_finite(key, value)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        if value <= 0:
            raise ProtocolError(f"option {key!r} must be > 0, got {value}")
        out[key] = float(value)
    out["slo_s"] = None
    if raw.get("slo_ms") is not None:
        slo = raw["slo_ms"]
        if isinstance(slo, bool) or not isinstance(slo, (int, float)):
            raise ProtocolError("option 'slo_ms' must be a number")
        try:
            check_finite("slo_ms", slo)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        if slo <= 0:
            raise ProtocolError(f"option 'slo_ms' must be > 0, got {slo}")
        out["slo_s"] = float(slo) / 1e3
    return out


def parse_request(line: "str | bytes") -> Request:
    """Parse and strictly validate one request line.

    Raises :class:`ProtocolError` (with an HTTP-style status) on any
    violation; never raises anything else for untrusted input.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"request exceeds {MAX_LINE_BYTES} bytes", status=413, code="too_large"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not UTF-8: {exc}") from exc
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(doc).__name__}")
    unknown = set(doc) - _REQUEST_KEYS
    if unknown:
        raise ProtocolError(f"unknown request key(s) {sorted(unknown)}")
    version = doc.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this server speaks "
            f"v{PROTOCOL_VERSION})",
            code="bad_version",
        )
    req_id = doc.get("id")
    if req_id is not None and not isinstance(req_id, (str, int)):
        raise ProtocolError("'id' must be a string or integer")
    op = doc.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {', '.join(OPS)})",
                            code="unknown_op")
    model = doc.get("model")
    params = _check_params(doc.get("params", {}))
    raw_options = doc.get("options", {})
    if not isinstance(raw_options, dict):
        raise ProtocolError("'options' must be an object")
    tenant = _check_tenant(doc.get("tenant"))
    if op in EVAL_OPS:
        if not isinstance(model, dict):
            raise ProtocolError(f"op {op!r} requires a 'model' object")
        options = evaluation_options(raw_options, op=op)
    elif op == "register_tenant":
        if model is not None or params:
            raise ProtocolError("op 'register_tenant' takes no model/params")
        if tenant is None:
            raise ProtocolError("op 'register_tenant' requires a 'tenant' identity")
        options = tenant_options(raw_options)
    else:
        if model is not None or params or raw_options:
            raise ProtocolError(f"op {op!r} takes no model/params/options")
        options = {}
    return Request(
        op=op, id=req_id, model=model, params=params, options=options, tenant=tenant
    )


def encode(doc: Mapping[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the terminating newline."""
    return json.dumps(dict(doc), separators=(",", ":"), allow_nan=True).encode() + b"\n"


def ok_response(req_id: "str | int | None", result: Mapping[str, Any], *,
                status: int = 200) -> dict[str, Any]:
    """A success response document."""
    return {"v": PROTOCOL_VERSION, "id": req_id, "ok": True, "status": status,
            "result": dict(result)}


def error_response(req_id: "str | int | None", *, status: int, code: str,
                   message: str, **extra: Any) -> dict[str, Any]:
    """A failure response document (HTTP-style status + machine code)."""
    return {"v": PROTOCOL_VERSION, "id": req_id, "ok": False, "status": status,
            "error": {"code": code, "message": message, **extra}}


def parse_response(line: "str | bytes") -> dict[str, Any]:
    """Decode a response line (client side); raises ``ValueError`` if torn."""
    doc = json.loads(line)
    if not isinstance(doc, dict) or "ok" not in doc:
        raise ValueError(f"malformed response frame: {line!r}")
    return doc
