"""Admission control as network calculus, applied to the server itself.

The reproduction's whole point is that NC bounds *real* systems — so
the serving layer eats its own cooking.  Two curves govern admission:

* the **arrival envelope** ``alpha(t) = R*t + b`` — a leaky bucket over
  *requests* (not bytes), enforced by :class:`TokenBucket`.  Requests
  beyond the envelope are rejected (429-style), never queued, so the
  offered load that reaches the workers is ``alpha``-constrained by
  construction;
* the **service curve** ``beta(t) = R_beta * (t - T)`` — a rate-latency
  model of the worker pool, with ``R_beta = workers / E[service time]``
  from calibrated (and continuously re-observed) per-request service
  times and ``T`` the dispatch latency.

With both curves affine, the classic closed forms apply exactly
(:func:`repro.nc.bounds.affine_delay_bound`): every *admitted* request
is bounded by ``d <= T + b / R_beta`` whenever ``R <= R_beta``.  The
controller therefore has a complete self-model: given a delay SLO it
can derive the largest admissible envelope
(:meth:`AdmissionController.for_slo`), and it rejects load whenever the
currently-configured envelope would violate the SLO under the
currently-calibrated service curve — the ``/capacity`` response exposes
the whole computation.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable

from .._validation import check_non_negative, check_positive
from ..nc.bounds import affine_backlog_bound, affine_delay_bound
from ..nc.builders import leaky_bucket, rate_latency
from ..nc.curve import Curve
from ..nc.kernel import eval_batch

__all__ = ["TokenBucket", "SelfModel", "AdmissionController"]


class TokenBucket:
    """Leaky-bucket admission: a request consumes a token or is rejected.

    A bucket with sustained ``rate`` tokens/s and capacity ``burst``
    admits exactly the traffic bounded by the arrival curve
    ``alpha(t) = rate * t + burst`` — the NC leaky bucket — because the
    cumulative admits over any window of width ``t`` cannot exceed the
    refill plus the capacity.  The clock is injectable so tests are
    deterministic.
    """

    def __init__(
        self, rate: float, burst: float, *, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.rate = check_positive("rate", rate)
        self.burst = check_positive("burst", burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    def level(self) -> float:
        """Tokens currently available (after refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Consume ``n`` tokens if available; never blocks."""
        check_positive("n", n)
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def time_until(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 if now)."""
        check_positive("n", n)
        self._refill()
        deficit = n - self._tokens
        return max(0.0, deficit / self.rate)

    def reconfigure(self, rate: float, burst: float) -> None:
        """Change the envelope in place (tokens are clamped to the new burst).

        Refills at the *old* rate first so no accrued credit is lost or
        forged across the switch.
        """
        self._refill()
        self.rate = check_positive("rate", rate)
        self.burst = check_positive("burst", burst)
        self._tokens = min(self._tokens, self.burst)

    def arrival_curve(self) -> Curve:
        """The enforced envelope as an NC curve (requests over time)."""
        return leaky_bucket(self.rate, self.burst)


class SelfModel:
    """The server's rate-latency service curve, from observed service times.

    ``workers`` parallel executors each finishing a request in mean
    time ``E[s]`` sustain ``R_beta = workers / E[s]`` requests/s; the
    dispatch latency ``T`` (queue hand-off + IPC) is the rate-latency
    offset.  Observations accumulate as running statistics, so the
    model tracks the *actual* served mix, not just the calibration
    workload.
    """

    def __init__(self, workers: int, *, dispatch_latency: float = 0.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.dispatch_latency = check_non_negative("dispatch_latency", dispatch_latency)
        self.count = 0
        self.mean_service_s = math.nan
        self.max_service_s = 0.0

    def observe(self, service_s: float) -> None:
        """Fold one per-request service time into the running model."""
        service_s = check_non_negative("service_s", service_s)
        self.count += 1
        if self.count == 1:
            self.mean_service_s = service_s
        else:
            self.mean_service_s += (service_s - self.mean_service_s) / self.count
        if service_s > self.max_service_s:
            self.max_service_s = service_s

    @property
    def calibrated(self) -> bool:
        """True once at least one service time has been observed."""
        return self.count > 0 and self.mean_service_s > 0.0

    @property
    def service_rate(self) -> float:
        """``R_beta`` in requests/s (``inf`` until calibrated-nonzero)."""
        if not self.calibrated:
            return math.inf
        return self.workers / self.mean_service_s

    def service_curve(self) -> Curve:
        """``beta(t) = R_beta * (t - T)`` as an NC curve."""
        if not self.calibrated:
            raise ValueError("self-model is uncalibrated: no service times observed")
        return rate_latency(self.service_rate, self.dispatch_latency)

    def delay_bound(self, bucket: TokenBucket) -> float:
        """NC delay bound for ``bucket``-admitted traffic through this server.

        The affine closed form ``T + b / R_beta`` (``inf`` when the
        admitted rate exceeds the service rate — the unstable regime).
        """
        if not self.calibrated:
            return math.inf
        return affine_delay_bound(
            bucket.rate, bucket.burst, self.service_rate, self.dispatch_latency
        )

    def backlog_bound(self, bucket: TokenBucket) -> float:
        """NC backlog bound ``b + R * T`` in requests (``inf`` if unstable)."""
        if not self.calibrated:
            return math.inf
        return affine_backlog_bound(
            bucket.rate, bucket.burst, self.service_rate, self.dispatch_latency
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able rendering for the ``/capacity`` response."""
        return {
            "workers": self.workers,
            "dispatch_latency_s": self.dispatch_latency,
            "observations": self.count,
            "mean_service_s": None if not self.count else self.mean_service_s,
            "max_service_s": None if not self.count else self.max_service_s,
            "service_rate_rps": None if not self.calibrated else self.service_rate,
        }


class AdmissionController:
    """Token-bucket admission gated by the server's own NC delay bound.

    A request is admitted iff

    1. the self-model's delay bound for the configured envelope does
       not exceed the SLO (when an SLO is configured).  An envelope
       derived by :meth:`for_slo` is *self-retightening*: when served
       requests turn out slower than the calibration mix (``R_beta``
       drops and the bound crosses the SLO), the controller re-solves
       ``b = (slo - T) * R_beta`` against the updated model and shrinks
       the bucket in place rather than rejecting forever.  Only a
       manually-pinned envelope (or an SLO no envelope can meet, e.g.
       ``slo <= T``) rejects with ``rejected_slo``.  A bound exactly
       *at* the SLO is admissible (the bound is a worst case,
       ``d <= slo`` is the contract); and
    2. a token is available — otherwise the instantaneous offered load
       exceeds ``alpha`` and the request is rejected with
       ``rejected_rate`` plus a ``retry_after_s`` hint.

    Rejection, not queueing: NC bounds hold for the admitted flow
    precisely because the excess never enters the system.
    """

    def __init__(
        self,
        bucket: TokenBucket,
        model: SelfModel,
        *,
        slo_s: "float | None" = None,
        auto_rate_fraction: "float | None" = None,
    ) -> None:
        self.bucket = bucket
        self.model = model
        self.slo_s = None if slo_s is None else check_positive("slo_s", slo_s)
        #: when set (by :meth:`for_slo`), the envelope tracks the model:
        #: a drifting service rate retightens the bucket instead of
        #: tripping ``rejected_slo``.
        self.auto_rate_fraction = auto_rate_fraction
        self.admitted = 0
        self.rejected_rate = 0
        self.rejected_slo = 0
        self.retightened = 0

    @classmethod
    def for_slo(
        cls,
        model: SelfModel,
        slo_s: float,
        *,
        rate_fraction: float = 0.9,
        clock: Callable[[], float] = time.monotonic,
    ) -> "AdmissionController":
        """Derive the largest SLO-safe envelope from the self-model.

        Inverting ``d <= T + b / R_beta <= slo`` gives the burst budget
        ``b = (slo - T) * R_beta``; the sustained rate is set to
        ``rate_fraction * R_beta`` (strictly below ``R_beta`` keeps the
        system stable with margin).  This is the \"self-applied\" NC
        design loop: measure beta, solve for alpha.
        """
        check_positive("slo_s", slo_s)
        if not 0.0 < rate_fraction <= 1.0:
            raise ValueError(f"rate_fraction must be in (0, 1], got {rate_fraction}")
        if not model.calibrated:
            raise ValueError("cannot derive an envelope from an uncalibrated model")
        if slo_s <= model.dispatch_latency:
            raise ValueError(
                f"slo {slo_s} s is not achievable: dispatch latency alone is "
                f"{model.dispatch_latency} s"
            )
        burst = max(1.0, (slo_s - model.dispatch_latency) * model.service_rate)
        rate = rate_fraction * model.service_rate
        return cls(
            TokenBucket(rate, burst, clock=clock),
            model,
            slo_s=slo_s,
            auto_rate_fraction=rate_fraction,
        )

    def retighten(self) -> bool:
        """Re-solve the envelope against the current self-model (auto mode).

        Returns True if the bucket was reconfigured.  No-op for pinned
        envelopes, uncalibrated models, or an SLO below the dispatch
        latency (no envelope can meet it).
        """
        if self.auto_rate_fraction is None or self.slo_s is None:
            return False
        if not self.model.calibrated or self.slo_s <= self.model.dispatch_latency:
            return False
        burst = max(
            1.0, (self.slo_s - self.model.dispatch_latency) * self.model.service_rate
        )
        rate = self.auto_rate_fraction * self.model.service_rate
        self.bucket.reconfigure(rate, burst)
        self.retightened += 1
        return True

    def delay_bound(self) -> float:
        """Current self-computed delay bound for admitted traffic."""
        return self.model.delay_bound(self.bucket)

    def slo_ok(self) -> bool:
        """Whether the configured envelope currently meets the SLO.

        A bound exactly at the SLO passes; the comparison allows one
        part in 10^9 of slack because :meth:`for_slo` *constructs* that
        boundary case (``b = (slo - T) * R_beta`` makes the bound equal
        the SLO up to floating-point rounding, which must not flip the
        verdict).
        """
        if self.slo_s is None:
            return True
        return self.delay_bound() <= self.slo_s * (1.0 + 1e-9)

    def admit(self) -> "tuple[bool, str | None, float]":
        """``(admitted, reject_code, retry_after_s)`` for one request."""
        if not self.slo_ok() and not (self.retighten() and self.slo_ok()):
            self.rejected_slo += 1
            return False, "rejected_slo", self.bucket.time_until()
        if not self.bucket.try_acquire():
            self.rejected_rate += 1
            return False, "rejected_rate", self.bucket.time_until()
        self.admitted += 1
        return True, None, 0.0

    def capacity_report(self) -> dict[str, Any]:
        """The full self-model: curves, bounds, SLO verdict, counters.

        An auto envelope is synced to the current model first, so the
        report describes what the *next* request will experience — not
        an envelope the model has since drifted away from.
        """
        if not self.slo_ok():
            self.retighten()
        bound = self.delay_bound()
        # sampled envelopes over a horizon that spans the interesting
        # region (latency + burst drain), batched through the kernel
        horizon = 2.0 * (
            self.model.dispatch_latency
            + self.bucket.burst / max(self.bucket.rate, 1e-9)
        )
        ts = [horizon * i / 7.0 for i in range(8)]
        alpha_samples = eval_batch(self.bucket.arrival_curve(), ts)
        beta_samples = eval_batch(self.model.service_curve(), ts)
        return {
            "arrival_curve": {
                "kind": "leaky_bucket",
                "rate_rps": self.bucket.rate,
                "burst_requests": self.bucket.burst,
                "tokens_available": self.bucket.level(),
            },
            "envelope_samples": {
                "t_s": ts,
                "arrival_requests": [float(v) for v in alpha_samples],
                "service_requests": [float(v) for v in beta_samples],
            },
            "service_curve": {
                "kind": "rate_latency",
                **self.model.to_dict(),
            },
            "delay_bound_s": None if math.isinf(bound) else bound,
            "stable": self.bucket.rate <= self.model.service_rate,
            "backlog_bound_requests": (
                None
                if math.isinf(self.model.backlog_bound(self.bucket))
                else self.model.backlog_bound(self.bucket)
            ),
            "slo_s": self.slo_s,
            "slo_ok": self.slo_ok(),
            "admitted": self.admitted,
            "rejected_rate": self.rejected_rate,
            "rejected_slo": self.rejected_slo,
            "retightened": self.retightened,
        }
