"""The asyncio analysis server: connections, drain, signal plumbing.

Architecture (stdlib only)::

    TCP clients --(NDJSON)--> asyncio event loop
        -> strict protocol validation          (repro.serve.protocol)
        -> one AnalysisEngine                  (repro.serve.engine)
            -> admission control               (repro.serve.admission)
            -> content-addressed cache lookup  (repro.sweep.cache)
            -> coalescing window               (repro.serve.batching)
            -> ProcessPoolExecutor             (repro.sweep.runner.evaluate_point)

    CPU-bound NC math and DES runs execute on worker *processes*, so
    the event loop only ever parses lines, checks tokens, and reads
    small cache files — it never blocks on a curve convolution.

The server is a thin shell over :class:`~repro.serve.engine.
AnalysisEngine`: it owns the listener socket, the connection set, and
the drain sequencing, while the engine owns the pool, cache, self-model
and admission.  The split is what makes a shard embeddable — the
cluster tier (:mod:`repro.cluster`) runs the same engine behind the
same listener in N independent processes.

Lifecycle: ``start()`` spins up the pool, runs a calibration pass
(which both pre-imports NumPy in the workers and primes the NC
self-model with measured service times), derives the admission envelope
when asked, and begins accepting.  SIGTERM/SIGINT request a graceful
drain: the listener closes, forming batches flush, in-flight requests
complete and are answered, idle connections close, the pool shuts down
— no admitted request is ever dropped.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
from typing import Any

from .. import __version__
from .engine import AnalysisEngine, ServeConfig
from .protocol import (
    CLUSTER_OPS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)

__all__ = ["ServeConfig", "AnalysisServer", "run", "ServerThread"]


class AnalysisServer:
    """One serving process: listener + connection handling over an engine."""

    def __init__(self, config: "ServeConfig | None" = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.engine = AnalysisEngine(self.config)
        self.host = self.config.host
        self.port: "int | None" = None
        self._server: "asyncio.base_events.Server | None" = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._dropped = 0
        self._draining = False
        self._shutdown_requested = asyncio.Event()

    # engine aliases (the embeddable state lives on the engine) -------- #

    @property
    def metrics(self):
        return self.engine.metrics

    @property
    def cache(self):
        return self.engine.cache

    @property
    def model(self):
        return self.engine.model

    @property
    def admission(self):
        return self.engine.admission

    @property
    def coalescer(self):
        return self.engine.coalescer

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> tuple[str, int]:
        """Start the engine (pool, calibration, admission), begin accepting."""
        cfg = self.config
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port, limit=MAX_LINE_BYTES
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    def request_shutdown(self) -> None:
        """Signal-safe: ask the serve loop to drain and exit."""
        self._shutdown_requested.set()

    async def wait_shutdown(self) -> None:
        await self._shutdown_requested.wait()

    async def drain(self) -> dict[str, Any]:
        """Stop accepting, finish in-flight work, release resources.

        Returns the drain summary; ``dropped`` is the number of
        admitted requests that could not be answered (0 on a clean
        drain — the SIGTERM contract).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._dropped += await self.engine.aclose()
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        served = int(self.engine.metrics.counter("serve.responses").value)
        return {
            "served": served,
            "rejected": int(self.engine.metrics.counter("serve.rejected").value),
            "dropped": self._dropped,
            "clean": self._dropped == 0,
        }

    # ------------------------------------------------------------------ #
    # request plumbing
    # ------------------------------------------------------------------ #

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            import socket as _socket

            with contextlib.suppress(OSError):
                # responses are single small frames; disable Nagle so
                # they leave immediately instead of waiting out an ACK
                sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        self._writers.add(writer)
        try:
            while not self._draining:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode(
                            error_response(
                                None,
                                status=413,
                                code="too_large",
                                message=f"request line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # EOF
                if not line.strip():
                    continue
                self.engine.begin()
                try:
                    response = await self._serve_line(line)
                    writer.write(encode(response))
                    await writer.drain()
                finally:
                    self.engine.end()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-exchange; nothing to answer
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_line(self, line: bytes) -> dict[str, Any]:
        self.engine.metrics.counter("serve.requests").inc()
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.engine.metrics.counter("serve.errors").inc()
            return error_response(None, status=exc.status, code=exc.code, message=str(exc))
        try:
            response = await self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 - a request must never kill the loop
            self.engine.metrics.counter("serve.errors").inc()
            response = error_response(
                request.id, status=500, code="internal",
                message=f"{type(exc).__name__}: {exc}",
            )
        if response.get("ok"):
            self.engine.metrics.counter("serve.responses").inc()
        else:
            self.engine.metrics.counter("serve.errors").inc()
        return response

    async def _dispatch(self, req: Request) -> dict[str, Any]:
        if req.op == "ping":
            return ok_response(
                req.id,
                {"pong": True, "version": __version__, "protocol": PROTOCOL_VERSION},
            )
        if req.op == "capacity":
            return ok_response(req.id, self.engine.capacity())
        if req.op == "stats":
            return ok_response(req.id, self.engine.stats())
        if req.op == "shutdown":
            self.request_shutdown()
            return ok_response(req.id, {"draining": True})
        if req.op in CLUSTER_OPS:
            return error_response(
                req.id,
                status=501,
                code="cluster_only",
                message=f"op {req.op!r} is served by the cluster router, "
                "not a single shard (see `repro cluster`)",
            )
        if self._draining:
            return error_response(
                req.id, status=503, code="draining", message="server is draining"
            )
        return await self.engine.evaluate(req)


async def _amain(config: ServeConfig, *, install_signals: bool = True,
                 ready: "threading.Event | None" = None,
                 handle: "ServerThread | None" = None,
                 on_ready=None) -> dict[str, Any]:
    server = AnalysisServer(config)
    host, port = await server.start()
    if install_signals:
        import signal

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(sig, server.request_shutdown)
    if handle is not None:
        handle._attach(server, asyncio.get_running_loop())
    print(
        f"repro-serve [{config.name}] listening on {host}:{port} "
        f"(pid {os.getpid()}, workers {server.model.workers}, "
        f"protocol v{PROTOCOL_VERSION})",
        flush=True,
    )
    if on_ready is not None:
        on_ready(host, port)
    if ready is not None:
        ready.set()
    await server.wait_shutdown()
    summary = await server.drain()
    verdict = "clean" if summary["clean"] else f"DROPPED {summary['dropped']}"
    print(
        f"repro-serve [{config.name}] drained ({verdict}): "
        f"{summary['served']} served, "
        f"{summary['rejected']} rejected, {summary['dropped']} dropped",
        flush=True,
    )
    return summary


def run(config: "ServeConfig | None" = None, *, on_ready=None) -> int:
    """Blocking entry point (the ``repro serve`` command body).

    Returns 0 on a clean drain, 1 if any in-flight request was dropped.
    ``on_ready(host, port)`` fires once the listener is bound — cluster
    shard processes use it to report their ephemeral port upstream.
    """
    summary = asyncio.run(
        _amain(config if config is not None else ServeConfig(), on_ready=on_ready)
    )
    return 0 if summary["clean"] else 1


class ServerThread:
    """A server hosted on a background thread — the test/benchmark harness.

    Runs the full production path (real sockets, real worker pool,
    real drain) without a subprocess::

        with ServerThread(ServeConfig(port=0)) as srv:
            client = ServeClient(srv.host, srv.port)
            ...

    ``stop()`` performs the same graceful drain as SIGTERM and returns
    the drain summary.
    """

    def __init__(self, config: "ServeConfig | None" = None, *, start_timeout: float = 60.0) -> None:
        self.config = config if config is not None else ServeConfig()
        self.summary: "dict[str, Any] | None" = None
        self.error: "BaseException | None" = None
        self._server: "AnalysisServer | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-serve")
        self._thread.start()
        if not self._ready.wait(start_timeout):
            raise TimeoutError("server thread failed to start in time")
        if self.error is not None:
            raise RuntimeError(f"server thread failed: {self.error}") from self.error

    def _attach(self, server: AnalysisServer, loop: asyncio.AbstractEventLoop) -> None:
        self._server = server
        self._loop = loop

    def _run(self) -> None:
        try:
            self.summary = asyncio.run(
                _amain(self.config, install_signals=False, ready=self._ready, handle=self)
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced to the creating thread
            self.error = exc
            self._ready.set()

    @property
    def host(self) -> str:
        assert self._server is not None
        return self._server.host

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.port is not None
        return self._server.port

    def stop(self, timeout: float = 60.0) -> dict[str, Any]:
        """Graceful drain (same path as SIGTERM); returns the summary."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._server.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("server thread did not drain in time")
        if self.error is not None:
            raise RuntimeError(f"server thread failed: {self.error}") from self.error
        assert self.summary is not None
        return self.summary

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._thread.is_alive():
            self.stop()
