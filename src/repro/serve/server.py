"""The asyncio analysis server: connections, workers, drain, telemetry.

Architecture (stdlib only)::

    TCP clients --(NDJSON)--> asyncio event loop
        -> strict protocol validation          (repro.serve.protocol)
        -> admission control                   (repro.serve.admission)
        -> content-addressed cache lookup      (repro.sweep.cache)
        -> coalescing window                   (repro.serve.batching)
        -> ProcessPoolExecutor                 (repro.sweep.runner.evaluate_point)

    CPU-bound NC math and DES runs execute on worker *processes*, so
    the event loop only ever parses lines, checks tokens, and reads
    small cache files — it never blocks on a curve convolution.

Lifecycle: ``start()`` spins up the pool, runs a calibration pass
(which both pre-imports NumPy in the workers and primes the NC
self-model with measured service times), derives the admission envelope
when asked, and begins accepting.  SIGTERM/SIGINT request a graceful
drain: the listener closes, forming batches flush, in-flight requests
complete and are answered, idle connections close, the pool shuts down
— no admitted request is ever dropped.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from .. import __version__
from ..nc.kernel import memo_stats as kernel_memo_stats
from ..nc.kernel import publish_metrics as publish_kernel_metrics
from ..nc.kernel import worker_init as kernel_worker_init
from ..telemetry.metrics import MetricsRegistry
from ..sweep.cache import ResultCache, point_key
from ..sweep.runner import point_seed
from .admission import AdmissionController, SelfModel, TokenBucket
from .batching import Coalescer, evaluate_batch
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)

__all__ = ["ServeConfig", "AnalysisServer", "run", "ServerThread"]


def _default_workers() -> int:
    return max(1, min(4, os.cpu_count() or 1))


@dataclass
class ServeConfig:
    """Everything the operator can turn — all times in seconds."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the actual port is printed/returned
    workers: "int | None" = None
    slo_s: "float | None" = None  # delay SLO for admitted requests
    rate: "float | None" = None  # admission: sustained requests/s (alpha rate R)
    burst: "float | None" = None  # admission: bucket capacity (alpha burst b)
    batch_window_s: float = 0.0  # 0 = coalescing off
    max_batch: int = 16
    request_timeout_s: float = 30.0
    drain_timeout_s: float = 10.0
    cache_dir: "str | None" = None
    calibrate: int = 6  # calibration evaluations at startup (0 = skip)

    def resolved_workers(self) -> int:
        return self.workers if self.workers is not None else _default_workers()


def _calibration_model() -> dict[str, Any]:
    """The reference request used to measure per-request service time.

    The BLAST case study's analyze is the canonical serving workload;
    its cost is representative of any measured pipeline of similar
    depth.
    """
    from ..apps.blast import blast_pipeline
    from ..streaming import pipeline_to_dict

    return pipeline_to_dict(blast_pipeline())


class AnalysisServer:
    """One serving process: listener, admission, coalescer, worker pool."""

    def __init__(self, config: "ServeConfig | None" = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.metrics = MetricsRegistry()
        self.cache = (
            ResultCache(self.config.cache_dir) if self.config.cache_dir else None
        )
        self.model = SelfModel(self.config.resolved_workers())
        self.admission: "AdmissionController | None" = None
        self.coalescer = Coalescer(
            self._pool_dispatch,
            window_s=self.config.batch_window_s,
            max_batch=self.config.max_batch,
        )
        self.executor: "ProcessPoolExecutor | None" = None
        self.host = self.config.host
        self.port: "int | None" = None
        self._server: "asyncio.base_events.Server | None" = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._dropped = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._shutdown_requested = asyncio.Event()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> tuple[str, int]:
        """Create the pool, calibrate, build admission, begin accepting."""
        cfg = self.config
        # each worker keeps one curve-algebra kernel memo for its whole
        # lifetime: repeated /analyze requests over the same pipelines
        # become kernel memo hits instead of fresh min-plus algebra
        self.executor = ProcessPoolExecutor(
            max_workers=cfg.resolved_workers(), initializer=kernel_worker_init
        )
        if cfg.calibrate > 0:
            await self._calibrate(cfg.calibrate)
        self._build_admission()
        self._server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port, limit=MAX_LINE_BYTES
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def _calibrate(self, n: int) -> None:
        """Prime worker imports and the NC self-model with measured times.

        First a parallel warm-up (one task per worker, so every process
        pays its NumPy import before traffic arrives), then ``n``
        sequential timed evaluations: in-worker compute time feeds the
        service-curve rate, and the best-case (submit - compute) gap
        estimates the dispatch latency ``T``.
        """
        model = _calibration_model()
        options = {"simulate": False, "packetized": False, "workload": None, "base_seed": 42}
        loop = asyncio.get_running_loop()
        warmups = [
            loop.run_in_executor(self.executor, evaluate_batch, model, [{}], options, [i])
            for i in range(self.model.workers)
        ]
        await asyncio.gather(*warmups)
        dispatch_gaps = []
        for i in range(n):
            t0 = time.perf_counter()
            out = await loop.run_in_executor(
                self.executor, evaluate_batch, model, [{}], options, [i]
            )
            wall = time.perf_counter() - t0
            compute = float(out[0].get("elapsed", 0.0))
            self.model.observe(compute)
            dispatch_gaps.append(max(0.0, wall - compute))
        # the smallest observed gap is the irreducible hand-off cost;
        # the coalescing window is part of dispatch by construction
        self.model.dispatch_latency = min(dispatch_gaps) + self.config.batch_window_s

    def _build_admission(self) -> None:
        cfg = self.config
        if cfg.rate is not None:
            bucket = TokenBucket(cfg.rate, cfg.burst if cfg.burst is not None else max(1.0, cfg.rate))
            self.admission = AdmissionController(bucket, self.model, slo_s=cfg.slo_s)
        elif cfg.slo_s is not None:
            if not self.model.calibrated:
                raise ValueError(
                    "--slo without --rate needs calibration (calibrate > 0) to "
                    "derive the admission envelope from the measured service curve"
                )
            self.admission = AdmissionController.for_slo(self.model, cfg.slo_s)
        else:
            self.admission = None  # open door: no envelope configured

    def request_shutdown(self) -> None:
        """Signal-safe: ask the serve loop to drain and exit."""
        self._shutdown_requested.set()

    async def wait_shutdown(self) -> None:
        await self._shutdown_requested.wait()

    async def drain(self) -> dict[str, Any]:
        """Stop accepting, finish in-flight work, release resources.

        Returns the drain summary; ``dropped`` is the number of
        admitted requests that could not be answered (0 on a clean
        drain — the SIGTERM contract).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.coalescer.flush()
        try:
            await asyncio.wait_for(self._idle.wait(), self.config.drain_timeout_s)
        except asyncio.TimeoutError:
            self._dropped += self._inflight
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self.executor is not None:
            self.executor.shutdown(wait=True)
        served = int(self.metrics.counter("serve.responses").value)
        return {
            "served": served,
            "rejected": int(self.metrics.counter("serve.rejected").value),
            "dropped": self._dropped,
            "clean": self._dropped == 0,
        }

    # ------------------------------------------------------------------ #
    # request plumbing
    # ------------------------------------------------------------------ #

    async def _pool_dispatch(
        self,
        model: Mapping[str, Any],
        params_list: Sequence[Mapping[str, Any]],
        options: Mapping[str, Any],
        seeds: Sequence[int],
    ) -> Sequence[dict[str, Any]]:
        """Ship one (possibly coalesced) batch to a worker process."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.executor,
            evaluate_batch,
            dict(model),
            [dict(p) for p in params_list],
            dict(options),
            list(seeds),
        )

    def _begin(self) -> None:
        self._inflight += 1
        self._idle.clear()

    def _end(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            import socket as _socket

            with contextlib.suppress(OSError):
                # responses are single small frames; disable Nagle so
                # they leave immediately instead of waiting out an ACK
                sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        self._writers.add(writer)
        try:
            while not self._draining:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode(
                            error_response(
                                None,
                                status=413,
                                code="too_large",
                                message=f"request line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # EOF
                if not line.strip():
                    continue
                self._begin()
                try:
                    response = await self._serve_line(line)
                    writer.write(encode(response))
                    await writer.drain()
                finally:
                    self._end()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-exchange; nothing to answer
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_line(self, line: bytes) -> dict[str, Any]:
        self.metrics.counter("serve.requests").inc()
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.metrics.counter("serve.errors").inc()
            return error_response(None, status=exc.status, code=exc.code, message=str(exc))
        try:
            response = await self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 - a request must never kill the loop
            self.metrics.counter("serve.errors").inc()
            response = error_response(
                request.id, status=500, code="internal",
                message=f"{type(exc).__name__}: {exc}",
            )
        if response.get("ok"):
            self.metrics.counter("serve.responses").inc()
        else:
            self.metrics.counter("serve.errors").inc()
        return response

    async def _dispatch(self, req: Request) -> dict[str, Any]:
        if req.op == "ping":
            return ok_response(
                req.id,
                {"pong": True, "version": __version__, "protocol": PROTOCOL_VERSION},
            )
        if req.op == "capacity":
            return ok_response(req.id, self.capacity())
        if req.op == "stats":
            return ok_response(req.id, self.stats())
        if req.op == "shutdown":
            self.request_shutdown()
            return ok_response(req.id, {"draining": True})
        return await self._evaluate(req)

    async def _evaluate(self, req: Request) -> dict[str, Any]:
        if self._draining:
            return error_response(
                req.id, status=503, code="draining", message="server is draining"
            )
        if self.admission is not None:
            admitted, code, retry_after = self.admission.admit()
            if not admitted:
                self.metrics.counter("serve.rejected").inc()
                return error_response(
                    req.id,
                    status=429,
                    code=code or "rejected",
                    message="admission control rejected the request "
                    "(offered load exceeds the alpha envelope or the SLO)",
                    retry_after_s=retry_after,
                )
        t0 = time.perf_counter()
        key = point_key(req.model or {}, req.params, req.options)
        out: "dict[str, Any] | None" = None
        cached = False
        if self.cache is not None:
            out = self.cache.get(key)
            cached = out is not None
            self.metrics.counter(
                "serve.cache.hits" if cached else "serve.cache.misses"
            ).inc()
        if out is None:
            # same derivation as the sweep runner, so one cache key maps
            # to one result no matter which subsystem computed it first
            seed = point_seed(int(req.options.get("base_seed", 42)), req.params)
            try:
                out = await asyncio.wait_for(
                    self.coalescer.submit(req.model or {}, req.params, req.options, seed),
                    self.config.request_timeout_s,
                )
            except asyncio.TimeoutError:
                return error_response(
                    req.id,
                    status=408,
                    code="timeout",
                    message=f"evaluation exceeded {self.config.request_timeout_s} s "
                    "(the worker task keeps running; retry may hit the cache)",
                )
            if "error" not in out and self.cache is not None:
                self.cache.put(key, out)
        if "error" in out:
            return error_response(
                req.id, status=422, code="evaluation_error", message=str(out["error"])
            )
        if not cached:
            self.model.observe(float(out.get("elapsed", 0.0)))
            self.metrics.histogram("serve.service_s").observe(
                float(out.get("elapsed", 0.0))
            )
        self.metrics.histogram("serve.latency_s").observe(time.perf_counter() - t0)
        return ok_response(req.id, {"key": key, "cached": cached, **out})

    # ------------------------------------------------------------------ #
    # introspection ops
    # ------------------------------------------------------------------ #

    def capacity(self) -> dict[str, Any]:
        """The server's NC self-model (the ``/capacity`` response body)."""
        if self.admission is not None:
            report = self.admission.capacity_report()
        else:
            report = {
                "arrival_curve": None,  # no envelope configured: open admission
                "service_curve": {"kind": "rate_latency", **self.model.to_dict()},
                "delay_bound_s": None,
                "slo_s": None,
                "slo_ok": True,
                "admitted": None,
                "rejected_rate": 0,
                "rejected_slo": 0,
            }
        report["inflight"] = self._inflight
        report["batch_window_s"] = self.config.batch_window_s
        report["draining"] = self._draining
        # the serving process runs its own NC algebra for admission
        # control; expose that kernel's memo health alongside the model
        report["kernel_memo"] = kernel_memo_stats()
        return report

    def stats(self) -> dict[str, Any]:
        """Counters, latency histograms, cache and batching effectiveness."""
        publish_kernel_metrics(self.metrics)
        return {
            "metrics": self.metrics.snapshot(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "batching": self.coalescer.stats(),
            "kernel_memo": kernel_memo_stats(),
            "inflight": self._inflight,
        }


async def _amain(config: ServeConfig, *, install_signals: bool = True,
                 ready: "threading.Event | None" = None,
                 handle: "ServerThread | None" = None) -> dict[str, Any]:
    server = AnalysisServer(config)
    host, port = await server.start()
    if install_signals:
        import signal

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(sig, server.request_shutdown)
    if handle is not None:
        handle._attach(server, asyncio.get_running_loop())
    print(
        f"repro-serve listening on {host}:{port} "
        f"(pid {os.getpid()}, workers {server.model.workers}, "
        f"protocol v{PROTOCOL_VERSION})",
        flush=True,
    )
    if ready is not None:
        ready.set()
    await server.wait_shutdown()
    summary = await server.drain()
    verdict = "clean" if summary["clean"] else f"DROPPED {summary['dropped']}"
    print(
        f"repro-serve drained ({verdict}): {summary['served']} served, "
        f"{summary['rejected']} rejected, {summary['dropped']} dropped",
        flush=True,
    )
    return summary


def run(config: "ServeConfig | None" = None) -> int:
    """Blocking entry point (the ``repro serve`` command body).

    Returns 0 on a clean drain, 1 if any in-flight request was dropped.
    """
    summary = asyncio.run(_amain(config if config is not None else ServeConfig()))
    return 0 if summary["clean"] else 1


class ServerThread:
    """A server hosted on a background thread — the test/benchmark harness.

    Runs the full production path (real sockets, real worker pool,
    real drain) without a subprocess::

        with ServerThread(ServeConfig(port=0)) as srv:
            client = ServeClient(srv.host, srv.port)
            ...

    ``stop()`` performs the same graceful drain as SIGTERM and returns
    the drain summary.
    """

    def __init__(self, config: "ServeConfig | None" = None, *, start_timeout: float = 60.0) -> None:
        self.config = config if config is not None else ServeConfig()
        self.summary: "dict[str, Any] | None" = None
        self.error: "BaseException | None" = None
        self._server: "AnalysisServer | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-serve")
        self._thread.start()
        if not self._ready.wait(start_timeout):
            raise TimeoutError("server thread failed to start in time")
        if self.error is not None:
            raise RuntimeError(f"server thread failed: {self.error}") from self.error

    def _attach(self, server: AnalysisServer, loop: asyncio.AbstractEventLoop) -> None:
        self._server = server
        self._loop = loop

    def _run(self) -> None:
        try:
            self.summary = asyncio.run(
                _amain(self.config, install_signals=False, ready=self._ready, handle=self)
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced to the creating thread
            self.error = exc
            self._ready.set()

    @property
    def host(self) -> str:
        assert self._server is not None
        return self._server.host

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.port is not None
        return self._server.port

    def stop(self, timeout: float = 60.0) -> dict[str, Any]:
        """Graceful drain (same path as SIGTERM); returns the summary."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._server.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("server thread did not drain in time")
        if self.error is not None:
            raise RuntimeError(f"server thread failed: {self.error}") from self.error
        assert self.summary is not None
        return self.summary

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._thread.is_alive():
            self.stop()
