"""Blocking client for the analysis service (plain sockets, stdlib only).

The protocol is a line of JSON each way, so the client is a thin
convenience layer: connect, frame, correlate ids, decode.  It is what
``repro request`` and ``repro cluster request`` use, what the
benchmarks drive load with, and the reference for writing clients in
other languages.

    with ServeClient(port=7421) as c:
        c.ping()
        resp = c.analyze(model_doc, params={"scale:network": 2.0})
        resp["result"]["nc"]["delay_bound"]

Connection behavior: a server (or cluster router/shard) that is *still
binding* — the common race right after ``repro serve``/``repro cluster
start`` — refuses connections for a moment; :meth:`ServeClient.connect`
therefore retries with exponential backoff for a bounded window and
raises :class:`ServeConnectError` (a ``ConnectionError`` naming the
endpoint, the attempt count, and the window) when the endpoint never
comes up, instead of leaking a raw ``ConnectionRefusedError`` from
whichever attempt failed last.

Both the connect and the request-retry backoffs apply **full jitter**:
the actual sleep is ``uniform(0, backoff)`` while the backoff ceiling
doubles per attempt.  Deterministic sleeps synchronize — a fleet of
clients reconnecting after a router bounce would otherwise hammer the
listener in lockstep waves.  The RNG is injectable (``rng=``) so tests
can pin the draw.  A server-supplied ``retry_after_s`` hint is honored
exactly, un-jittered: the server already knows when capacity frees up.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Mapping

from .protocol import PROTOCOL_VERSION, encode, parse_response

__all__ = ["ServeClient", "ServeClosedError", "ServeConnectError"]

#: response statuses that :meth:`ServeClient.request` may retry on —
#: admission rejection (the server names a retry_after_s) and transient
#: unavailability (draining server, router with a shard mid-failover)
RETRYABLE_STATUSES = (429, 503)


class ServeClosedError(ConnectionError):
    """The server closed the connection before answering."""


class ServeConnectError(ConnectionError):
    """No server accepted a connection within the retry window."""


class ServeClient:
    """One connection to a running analysis server or cluster router."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        *,
        timeout: float = 60.0,
        connect_retries: int = 0,
        connect_backoff_s: float = 0.05,
        rng: "random.Random | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: extra connect attempts after the first (0 = fail fast)
        self.connect_retries = int(connect_retries)
        #: backoff *ceiling* between attempts; doubles per retry, capped
        #: at 1 s — each sleep draws uniform(0, ceiling) (full jitter)
        self.connect_backoff_s = float(connect_backoff_s)
        self._rng = rng if rng is not None else random.Random()
        self._sock: "socket.socket | None" = None
        self._file: Any = None
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        attempts = 1 + max(0, self.connect_retries)
        backoff = max(0.0, self.connect_backoff_s)
        t0 = time.monotonic()
        last: "Exception | None" = None
        for attempt in range(attempts):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), self.timeout
                )
                break
            except (ConnectionError, OSError) as exc:
                last = exc
                self._sock = None
                if attempt + 1 < attempts:
                    time.sleep(self._rng.uniform(0.0, backoff))
                    backoff = min(1.0, backoff * 2 if backoff > 0 else 0.05)
        if self._sock is None:
            waited = time.monotonic() - t0
            raise ServeConnectError(
                f"no analysis server accepted a connection at "
                f"{self.host}:{self.port} after {attempts} attempt(s) over "
                f"{waited:.2f} s ({type(last).__name__}: {last}); is the "
                "server/router running (or still binding)?"
            ) from last
        # one small frame per request: Nagle + delayed ACK would add
        # a ~10 ms floor to every round trip
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # requests
    # ------------------------------------------------------------------ #

    def request(
        self,
        op: str,
        *,
        model: "Mapping[str, Any] | None" = None,
        params: "Mapping[str, Any] | None" = None,
        options: "Mapping[str, Any] | None" = None,
        tenant: "str | None" = None,
        id: "str | int | None" = None,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
    ) -> dict[str, Any]:
        """Send one request and block for its response document.

        ``retries > 0`` makes the client router-aware: a 429 (admission
        rejected) or 503 (draining / shard failing over) response is
        retried up to ``retries`` times, honoring the server's
        ``retry_after_s`` hint when present and a full-jittered
        exponential backoff otherwise.  The final response — success
        or not — is returned.
        """
        self.connect()
        if id is None:
            self._next_id += 1
            id = self._next_id
        doc: dict[str, Any] = {"v": PROTOCOL_VERSION, "id": id, "op": op}
        if model is not None:
            doc["model"] = dict(model)
        if params:
            doc["params"] = dict(params)
        if options:
            doc["options"] = dict(options)
        if tenant is not None:
            doc["tenant"] = tenant
        frame = encode(doc)
        backoff = max(0.0, retry_backoff_s)
        for attempt in range(1 + max(0, retries)):
            response = self._exchange(frame)
            if response.get("ok") or response.get("status") not in RETRYABLE_STATUSES:
                return response
            if attempt >= retries:
                return response
            hint = (response.get("error") or {}).get("retry_after_s")
            # the hint is exact (the server computed when the bucket
            # refills); only the blind backoff gets jittered
            delay = float(hint) if hint else self._rng.uniform(0.0, backoff)
            time.sleep(min(2.0, max(0.0, delay)))
            backoff = min(1.0, backoff * 2 if backoff > 0 else 0.05)
        return response

    def _exchange(self, frame: bytes) -> dict[str, Any]:
        self._file.write(frame)
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeClosedError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        return parse_response(line)

    # convenience verbs -------------------------------------------------- #

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def capacity(self) -> dict[str, Any]:
        return self.request("capacity")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and exit (answered before it does)."""
        return self.request("shutdown")

    def register_tenant(
        self,
        tenant: str,
        rate: float,
        burst: float,
        *,
        slo_ms: "float | None" = None,
    ) -> dict[str, Any]:
        """Declare a tenant's leaky bucket alpha(t) = rate*t + burst (router op)."""
        options: dict[str, Any] = {"rate": rate, "burst": burst}
        if slo_ms is not None:
            options["slo_ms"] = slo_ms
        return self.request("register_tenant", tenant=tenant, options=options)

    def tenants(self) -> dict[str, Any]:
        """The router's tenant registry report (router op)."""
        return self.request("tenants")

    def analyze(
        self,
        model: Mapping[str, Any],
        params: "Mapping[str, Any] | None" = None,
        *,
        tenant: "str | None" = None,
        retries: int = 0,
        **options: Any,
    ) -> dict[str, Any]:
        return self.request(
            "analyze", model=model, params=params, options=options,
            tenant=tenant, retries=retries,
        )

    def simulate(
        self,
        model: Mapping[str, Any],
        params: "Mapping[str, Any] | None" = None,
        *,
        tenant: "str | None" = None,
        retries: int = 0,
        **options: Any,
    ) -> dict[str, Any]:
        return self.request(
            "simulate", model=model, params=params, options=options,
            tenant=tenant, retries=retries,
        )

    def sweep_point(
        self,
        model: Mapping[str, Any],
        params: "Mapping[str, Any] | None" = None,
        *,
        tenant: "str | None" = None,
        retries: int = 0,
        **options: Any,
    ) -> dict[str, Any]:
        return self.request(
            "sweep_point", model=model, params=params, options=options,
            tenant=tenant, retries=retries,
        )
