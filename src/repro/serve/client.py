"""Blocking client for the analysis service (plain sockets, stdlib only).

The protocol is a line of JSON each way, so the client is a thin
convenience layer: connect, frame, correlate ids, decode.  It is what
``repro request`` uses, what the benchmarks drive load with, and the
reference for writing clients in other languages.

    with ServeClient(port=7421) as c:
        c.ping()
        resp = c.analyze(model_doc, params={"scale:network": 2.0})
        resp["result"]["nc"]["delay_bound"]
"""

from __future__ import annotations

import socket
from typing import Any, Mapping

from .protocol import PROTOCOL_VERSION, encode, parse_response

__all__ = ["ServeClient", "ServeClosedError"]


class ServeClosedError(ConnectionError):
    """The server closed the connection before answering."""


class ServeClient:
    """One connection to a running analysis server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        *,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: "socket.socket | None" = None
        self._file: Any = None
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #

    def connect(self) -> "ServeClient":
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port), self.timeout)
            # one small frame per request: Nagle + delayed ACK would add
            # a ~10 ms floor to every round trip
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # requests
    # ------------------------------------------------------------------ #

    def request(
        self,
        op: str,
        *,
        model: "Mapping[str, Any] | None" = None,
        params: "Mapping[str, Any] | None" = None,
        options: "Mapping[str, Any] | None" = None,
        id: "str | int | None" = None,
    ) -> dict[str, Any]:
        """Send one request and block for its response document."""
        self.connect()
        if id is None:
            self._next_id += 1
            id = self._next_id
        doc: dict[str, Any] = {"v": PROTOCOL_VERSION, "id": id, "op": op}
        if model is not None:
            doc["model"] = dict(model)
        if params:
            doc["params"] = dict(params)
        if options:
            doc["options"] = dict(options)
        self._file.write(encode(doc))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeClosedError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        return parse_response(line)

    # convenience verbs -------------------------------------------------- #

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def capacity(self) -> dict[str, Any]:
        return self.request("capacity")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and exit (answered before it does)."""
        return self.request("shutdown")

    def analyze(
        self,
        model: Mapping[str, Any],
        params: "Mapping[str, Any] | None" = None,
        **options: Any,
    ) -> dict[str, Any]:
        return self.request("analyze", model=model, params=params, options=options)

    def simulate(
        self,
        model: Mapping[str, Any],
        params: "Mapping[str, Any] | None" = None,
        **options: Any,
    ) -> dict[str, Any]:
        return self.request("simulate", model=model, params=params, options=options)

    def sweep_point(
        self,
        model: Mapping[str, Any],
        params: "Mapping[str, Any] | None" = None,
        **options: Any,
    ) -> dict[str, Any]:
        return self.request("sweep_point", model=model, params=params, options=options)
