"""Paper-versus-reproduction comparison tables.

One function per table/observation set in the paper's evaluation; each
returns structured rows that the CLI and the benchmark harness format.
``ours`` values are computed live from the models/simulators; ``paper``
values are the printed constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .apps.blast import BLAST_PAPER, blast_analysis, blast_simulation
from .apps.bump_in_the_wire import (
    BITW_PAPER,
    bitw_analysis,
    bitw_pipeline,
    bitw_simulation,
)
from .units import KiB, MiB, format_bytes, format_rate, format_seconds

__all__ = [
    "Row",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "blast_observation_rows",
    "bitw_observation_rows",
    "format_rows",
]


@dataclass(frozen=True)
class Row:
    """One comparison line: a quantity, the paper's value, and ours."""

    quantity: str
    paper: float
    ours: float
    fmt: Callable[[float], str] = format_rate

    @property
    def deviation(self) -> float:
        """Relative deviation of our value from the paper's."""
        if self.paper == 0:
            return 0.0
        return (self.ours - self.paper) / self.paper


def table1_rows(workload: float = 256 * MiB, seed: int | None = 42) -> list[Row]:
    """Table 1: BLAST streaming application throughput."""
    rep = blast_analysis()
    sim = blast_simulation(workload=workload, seed=seed)
    return [
        Row("NC upper bound", BLAST_PAPER.nc_upper_bound, rep.throughput_upper_bound),
        Row("NC lower bound", BLAST_PAPER.nc_lower_bound, rep.throughput_lower_bound),
        Row("DES model", BLAST_PAPER.des_throughput, sim.steady_state_throughput),
        Row("Queueing prediction", BLAST_PAPER.queueing_prediction, rep.queueing_prediction),
        Row("Measured (external, [12])", BLAST_PAPER.measured_throughput, float("nan")),
    ]


def blast_observation_rows(workload: float = 256 * MiB, seed: int | None = 42) -> list[Row]:
    """§4.2 numbered observations: delay and backlog, model vs simulation."""
    rep = blast_analysis()
    sim = blast_simulation(workload=workload, seed=seed)
    vd = sim.observed_virtual_delays(skip_initial_fraction=0.15)
    return [
        Row("delay bound d", BLAST_PAPER.delay_bound, rep.delay_bound, format_seconds),
        Row("sim longest delay", BLAST_PAPER.sim_delay_longest, vd.max, format_seconds),
        Row("sim shortest delay", BLAST_PAPER.sim_delay_shortest, vd.min, format_seconds),
        Row("backlog bound x", BLAST_PAPER.backlog_bound, rep.backlog_bound, format_bytes),
        Row(
            "sim max backlog (paper prints '20.1 KiB', see DESIGN.md)",
            BLAST_PAPER.sim_backlog,
            sim.max_backlog_bytes,
            format_bytes,
        ),
    ]


def table2_rows() -> list[Row]:
    """Table 2: per-stage throughput, as the model consumes it.

    The *paper* column reprints Table 2's average column (compress row
    normalized by the 2.2x average ratio, as the caption states); the
    *ours* column is our configured stage's input-referred average —
    identical by construction except for the compressor rounding, so
    this row set documents the configuration rather than re-measures
    hardware.  The Python-kernel measurement demo lives in
    ``benchmarks/bench_table2_stages.py``.
    """
    ns = bitw_pipeline().normalized()
    by_name = {s.name: s for s in ns}
    paper_avg = {
        "compress": 2662 * MiB,
        "encrypt": 68 * MiB,
        "network": 10 * 1024 * MiB,
        "decrypt": 90 * MiB,
        "decompress": 1495 * MiB,
        "pcie": 11 * 1024 * MiB,
    }
    rows = []
    for name, paper in paper_avg.items():
        ours = by_name[name].rate_avg
        if name == "compress":
            ours = ours * 2.2  # Table 2 prints the ratio-normalized value
        elif name in ("encrypt", "network", "decrypt", "decompress"):
            ours = ours / 2.2  # our normalized() already multiplied by 2.2
        rows.append(Row(f"{name} (avg)", paper, ours))
    return rows


def table3_rows(workload: float = 4 * MiB, seed: int | None = 42) -> list[Row]:
    """Table 3: bump-in-the-wire throughput."""
    rep = bitw_analysis()
    sim = bitw_simulation(workload=workload, seed=seed)
    return [
        Row("NC upper bound", BITW_PAPER.nc_upper_bound, rep.throughput_upper_bound),
        Row("NC lower bound", BITW_PAPER.nc_lower_bound, rep.throughput_lower_bound),
        Row("DES model", BITW_PAPER.des_throughput, sim.steady_state_throughput),
        Row("Queueing prediction", BITW_PAPER.queueing_prediction, rep.queueing_prediction),
    ]


def bitw_observation_rows(workload: float = 4 * MiB, seed: int | None = 42) -> list[Row]:
    """§5 numbered observations: delay and backlog, model vs simulation."""
    rep = bitw_analysis()
    sim = bitw_simulation(workload=workload, seed=seed)
    vd = sim.observed_virtual_delays(skip_initial_fraction=0.15)
    return [
        Row("delay bound d", BITW_PAPER.delay_bound, rep.delay_bound, format_seconds),
        Row("sim longest delay", BITW_PAPER.sim_delay_longest, vd.max, format_seconds),
        Row("sim shortest delay", BITW_PAPER.sim_delay_shortest, vd.min, format_seconds),
        Row("backlog bound x", BITW_PAPER.backlog_bound, rep.backlog_bound, format_bytes),
        Row("sim max backlog", BITW_PAPER.sim_backlog, sim.max_backlog_bytes, format_bytes),
    ]


def format_rows(title: str, rows: list[Row]) -> str:
    """Render a comparison table with per-row deviations."""
    import math

    lines = [f"== {title} ==", f"{'quantity':<52} {'paper':>14} {'ours':>14} {'dev':>8}"]
    for r in rows:
        ours = "-" if math.isnan(r.ours) else r.fmt(r.ours)
        dev = "-" if math.isnan(r.ours) else f"{r.deviation:+.1%}"
        lines.append(f"{r.quantity:<52} {r.fmt(r.paper):>14} {ours:>14} {dev:>8}")
    return "\n".join(lines)
