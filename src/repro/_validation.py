"""Small argument-validation helpers shared across the library.

These keep error messages uniform and make the public API fail loudly
on nonsensical inputs (negative rates, non-finite bursts, ...), which is
essential when model parameters are read from measurement files.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "check_finite",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
]


def check_finite(name: str, value: float) -> float:
    """Ensure ``value`` is a finite real number; return it as a float."""
    v = float(value)
    if not math.isfinite(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return v


def check_positive(name: str, value: float) -> float:
    """Ensure ``value`` is finite and strictly positive."""
    v = check_finite(name, value)
    if v <= 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return v


def check_non_negative(name: str, value: float) -> float:
    """Ensure ``value`` is finite and non-negative."""
    v = check_finite(name, value)
    if v < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_in_range(
    name: str, value: float, lo: float, hi: float, *, inclusive: bool = True
) -> float:
    """Ensure ``lo <= value <= hi`` (or strict when ``inclusive=False``)."""
    v = check_finite(name, value)
    if inclusive:
        if not (lo <= v <= hi):
            raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    else:
        if not (lo < v < hi):
            raise ValueError(f"{name} must be in ({lo}, {hi}), got {value!r}")
    return v


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> Any:
    """Ensure ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value
