"""Isolated stage measurement — the paper's model-parameterisation step.

Both the queueing model and the network-calculus model are "derived
from measurements taken in isolation without a full deployment".  This
module times a kernel callable over a set of data chunks and converts
the observed per-chunk rates into a :class:`repro.streaming.Stage`
(min/avg/max rate triple + latency), closing the loop from *real
kernel* to *model parameter*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .._validation import check_positive
from ..streaming import Stage, StageKind, VolumeRatio

__all__ = ["ThroughputMeasurement", "measure_throughput", "measurement_to_stage"]


@dataclass(frozen=True)
class ThroughputMeasurement:
    """Observed per-chunk throughput statistics of one kernel."""

    name: str
    chunk_bytes: float  # mean chunk size
    rate_min: float
    rate_avg: float
    rate_max: float
    latency: float  # fastest observed per-chunk wall time
    samples: int

    def summary(self) -> str:
        from ..units import format_rate, format_seconds

        return (
            f"{self.name}: {format_rate(self.rate_min)} / "
            f"{format_rate(self.rate_avg)} / {format_rate(self.rate_max)} "
            f"(min/avg/max over {self.samples} chunks, "
            f"latency {format_seconds(self.latency)})"
        )


def measure_throughput(
    name: str,
    kernel: Callable[[bytes], object],
    chunks: Sequence[bytes],
    *,
    repeats: int = 3,
    warmup: int = 1,
) -> ThroughputMeasurement:
    """Time ``kernel`` over every chunk, ``repeats`` times each.

    Per-chunk rate = chunk size / best-of-repeats wall time (best-of
    suppresses interpreter noise, the standard microbenchmark practice);
    min/avg/max are taken across chunks, which is where real data-
    dependent variation (e.g. compressibility) shows up.
    """
    if not chunks:
        raise ValueError("need at least one chunk")
    check_positive("repeats", repeats)
    for _ in range(warmup):
        kernel(chunks[0])
    rates: list[float] = []
    times: list[float] = []
    for chunk in chunks:
        if len(chunk) == 0:
            raise ValueError("chunks must be non-empty")
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            kernel(chunk)
            best = min(best, time.perf_counter() - t0)
        rates.append(len(chunk) / best)
        times.append(best)
    return ThroughputMeasurement(
        name=name,
        chunk_bytes=float(np.mean([len(c) for c in chunks])),
        rate_min=float(min(rates)),
        rate_avg=float(np.mean(rates)),
        rate_max=float(max(rates)),
        latency=float(min(times)),
        samples=len(chunks),
    )


def measurement_to_stage(
    m: ThroughputMeasurement,
    *,
    volume_ratio: VolumeRatio | None = None,
    kind: StageKind = StageKind.COMPUTE,
    job_bytes: float | None = None,
) -> Stage:
    """Convert a measurement into a model stage.

    The job size defaults to the measured chunk size (the granularity
    the kernel was actually driven at).
    """
    return Stage(
        m.name,
        avg_rate=m.rate_avg,
        min_rate=m.rate_min,
        max_rate=m.rate_max,
        latency=m.latency,
        job_bytes=job_bytes if job_bytes is not None else m.chunk_bytes,
        volume_ratio=volume_ratio or VolumeRatio.identity(),
        kind=kind,
    )
