"""Synthetic workload generators for calibration and examples.

The paper measures each stage in isolation on representative data; in
this reproduction the representative data is synthetic: random DNA for
the BLAST substrate and text corpora of controllable redundancy for the
compression substrate (compression ratio statistics depend entirely on
the data's repetitiveness, which :func:`compressible_text` dials).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_in_range, check_positive

__all__ = [
    "random_dna",
    "synthetic_fasta",
    "incompressible_bytes",
    "compressible_text",
    "ratio_ladder_corpus",
]

_WORDS = (
    b"stream", b"data", b"kernel", b"buffer", b"queue", b"packet", b"node",
    b"latency", b"burst", b"service", b"arrival", b"bound", b"backlog",
    b"network", b"calculus", b"pipeline", b"throughput", b"fpga", b"gpu",
)


def random_dna(n: int, seed: int | None = 0) -> str:
    """A uniformly random DNA string of length ``n``."""
    check_positive("n", n)
    rng = np.random.default_rng(seed)
    return "".join(np.array(list("ACGT"))[rng.integers(0, 4, size=int(n))])


def synthetic_fasta(
    n_records: int, length: int, seed: int | None = 0, *, planted_query: str | None = None
) -> str:
    """FASTA text with ``n_records`` random sequences of ``length`` bases.

    When ``planted_query`` is given, it is embedded verbatim in the
    middle of the first record so searches have a guaranteed hit.
    """
    check_positive("n_records", n_records)
    check_positive("length", length)
    rng = np.random.default_rng(seed)
    out = []
    for i in range(int(n_records)):
        seq = random_dna(length, int(rng.integers(0, 2**31)))
        if i == 0 and planted_query:
            if len(planted_query) > length:
                raise ValueError("planted query longer than the record")
            mid = (length - len(planted_query)) // 2
            seq = seq[:mid] + planted_query.upper() + seq[mid + len(planted_query):]
        out.append(f">synthetic_{i}\n{seq}")
    return "\n".join(out) + "\n"


def incompressible_bytes(n: int, seed: int | None = 0) -> bytes:
    """Uniformly random bytes — the compression ratio-1.0 worst case."""
    check_positive("n", n)
    return np.random.default_rng(seed).integers(0, 256, size=int(n), dtype=np.uint8).tobytes()


def compressible_text(n: int, seed: int | None = 0, redundancy: float = 0.7) -> bytes:
    """``n`` bytes of word-salad whose repetitiveness tracks ``redundancy``.

    ``redundancy`` in [0, 1): 0 draws every word fresh from a wide
    vocabulary; values near 1 re-use a tiny vocabulary, pushing LZ4
    ratios toward the paper's observed 5.3x best case.
    """
    check_positive("n", n)
    check_in_range("redundancy", redundancy, 0.0, 1.0, inclusive=False)
    rng = np.random.default_rng(seed)
    vocab_size = max(1, int(round((1.0 - redundancy) * len(_WORDS))))
    vocab = _WORDS[:vocab_size]
    parts: list[bytes] = []
    size = 0
    while size < n:
        w = vocab[int(rng.integers(0, len(vocab)))]
        parts.append(w)
        parts.append(b" ")
        size += len(w) + 1
    return b"".join(parts)[: int(n)]


def ratio_ladder_corpus(
    chunk: int, seed: int | None = 0
) -> dict[str, bytes]:
    """A named corpus spanning the compression-ratio spectrum.

    Keys order from incompressible to highly repetitive; used by the
    Table-2 methodology bench to show measured min/avg/max ratios.
    """
    check_positive("chunk", chunk)
    return {
        "random": incompressible_bytes(chunk, seed),
        "text_low": compressible_text(chunk, seed, redundancy=0.2),
        "text_mid": compressible_text(chunk, seed, redundancy=0.6),
        "text_high": compressible_text(chunk, seed, redundancy=0.9),
        "zeros": bytes(int(chunk)),
    }
