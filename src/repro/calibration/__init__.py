"""Isolated measurement and synthetic workloads.

Implements the paper's parameterisation methodology: drive a kernel in
isolation over representative chunks, convert the observed rate
statistics into model stages.
"""

from .measure import ThroughputMeasurement, measure_throughput, measurement_to_stage
from .workloads import (
    compressible_text,
    incompressible_bytes,
    random_dna,
    ratio_ladder_corpus,
    synthetic_fasta,
)

__all__ = [
    "ThroughputMeasurement",
    "measure_throughput",
    "measurement_to_stage",
    "compressible_text",
    "incompressible_bytes",
    "random_dna",
    "ratio_ladder_corpus",
    "synthetic_fasta",
]
