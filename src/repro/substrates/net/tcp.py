"""TCP-over-Ethernet link model (the FPGA TCP + CMAC kernel pair).

The bump-in-the-wire network node is "a demo implementation of a TCP
stack and CMAC kernels that facilitate network communication between
two FPGA cards".  The performance-relevant behaviour of such a link:

* the line is rate-limited (e.g. 100 Gb/s CMAC);
* per-segment protocol overhead (Ethernet + IP + TCP headers) shaves
  goodput by ``mss / (mss + overhead)``;
* an un-scaled window caps throughput at ``window / rtt``.

:class:`TcpLink` combines the three into an effective rate, a
rate-latency service curve (latency = one propagation delay), and the
conversions into model/simulator stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..._validation import check_non_negative, check_positive
from ...nc import Curve, rate_latency
from ...streaming import Stage, StageKind

__all__ = ["TcpLink", "ETH_IP_TCP_OVERHEAD"]

#: Ethernet (14+4) + IPv4 (20) + TCP (20) header bytes per segment,
#: ignoring options and the inter-frame gap.
ETH_IP_TCP_OVERHEAD = 58.0


@dataclass(frozen=True)
class TcpLink:
    """A windowed, segment-based link between two network ports."""

    name: str
    line_rate: float  # bits on the wire per second / 8 (bytes/s)
    rtt: float  # round-trip time in seconds
    window_bytes: float  # advertised/congestion window
    mss: float = 1460.0  # maximum segment payload
    overhead_bytes: float = ETH_IP_TCP_OVERHEAD

    def __post_init__(self) -> None:
        check_positive("line_rate", self.line_rate)
        check_positive("rtt", self.rtt)
        check_positive("window_bytes", self.window_bytes)
        check_positive("mss", self.mss)
        check_non_negative("overhead_bytes", self.overhead_bytes)

    @property
    def goodput_fraction(self) -> float:
        """Payload fraction of each wire segment."""
        return self.mss / (self.mss + self.overhead_bytes)

    @property
    def window_limit(self) -> float:
        """Throughput ceiling imposed by the window: ``window / rtt``."""
        return self.window_bytes / self.rtt

    @property
    def effective_rate(self) -> float:
        """Sustained payload throughput (bytes/s)."""
        return min(self.line_rate * self.goodput_fraction, self.window_limit)

    @property
    def latency(self) -> float:
        """One-way propagation latency (half the RTT)."""
        return self.rtt / 2.0

    def transfer_time(self, nbytes: float) -> float:
        """Time to deliver ``nbytes`` of payload over the link."""
        check_positive("nbytes", nbytes)
        return self.latency + nbytes / self.effective_rate

    def service_curve(self) -> Curve:
        """Rate-latency service curve of the link."""
        return rate_latency(self.effective_rate, self.latency)

    def as_stage(self) -> Stage:
        """The link as a measured pipeline stage (for the NC model)."""
        return Stage.link(
            self.name,
            self.effective_rate,
            latency=self.latency,
            mtu=self.mss,
            kind=StageKind.NETWORK,
        )
