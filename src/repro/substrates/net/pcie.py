"""PCI Express link model (host <-> accelerator data movement).

Both applications move data across PCIe; the model captures the
performance-relevant mechanics:

* per-lane signalling rate by generation (GT/s) and its line encoding
  (8b/10b for gen1/2, 128b/130b from gen3 on);
* TLP framing overhead per max-payload-size packet
  (~24 header/framing bytes per TLP), which shaves effective bandwidth
  by ``mps / (mps + overhead)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..._validation import check_non_negative, check_positive
from ...nc import Curve, rate_latency
from ...streaming import Stage, StageKind

__all__ = ["PcieLink", "PCIE_GT_PER_S", "TLP_OVERHEAD_BYTES"]

#: Per-lane raw signalling rate in GT/s by PCIe generation.
PCIE_GT_PER_S: dict[int, float] = {1: 2.5, 2: 5.0, 3: 8.0, 4: 16.0, 5: 32.0}

#: TLP header + framing bytes per packet (3-4 DW header + sequence/LCRC).
TLP_OVERHEAD_BYTES = 24.0


@dataclass(frozen=True)
class PcieLink:
    """A ``gen``-eration x ``lanes`` PCIe link with ``mps``-byte payloads."""

    name: str
    gen: int
    lanes: int
    mps: float = 256.0  # max payload size per TLP
    latency: float = 0.5e-6  # DMA setup / completion latency

    def __post_init__(self) -> None:
        if self.gen not in PCIE_GT_PER_S:
            raise ValueError(f"unknown PCIe generation {self.gen}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid lane count {self.lanes}")
        check_positive("mps", self.mps)
        check_non_negative("latency", self.latency)

    @property
    def encoding_efficiency(self) -> float:
        """Line-coding efficiency: 8b/10b below gen3, 128b/130b after."""
        return 0.8 if self.gen <= 2 else 128.0 / 130.0

    @property
    def raw_rate(self) -> float:
        """Post-encoding raw byte rate of the whole link."""
        gts = PCIE_GT_PER_S[self.gen] * 1e9
        return gts * self.encoding_efficiency / 8.0 * self.lanes

    @property
    def effective_rate(self) -> float:
        """Payload throughput after TLP framing overhead (bytes/s)."""
        return self.raw_rate * self.mps / (self.mps + TLP_OVERHEAD_BYTES)

    def transfer_time(self, nbytes: float) -> float:
        """Time to DMA ``nbytes`` across the link."""
        check_positive("nbytes", nbytes)
        return self.latency + nbytes / self.effective_rate

    def service_curve(self) -> Curve:
        """Rate-latency service curve of the link."""
        return rate_latency(self.effective_rate, self.latency)

    def as_stage(self) -> Stage:
        """The link as a measured pipeline stage (for the NC model)."""
        return Stage.link(
            self.name,
            self.effective_rate,
            latency=self.latency,
            mtu=self.mps,
            kind=StageKind.PCIE,
        )
