"""Communication-link substrates: stream FIFOs, TCP links, PCIe links.

Parameterised models of the three data-movement elements the paper's
applications rely on, each exporting a network-calculus service curve
and a measured-stage view for the pipeline model.
"""

from .fifo import StreamFifo
from .tcp import ETH_IP_TCP_OVERHEAD, TcpLink
from .pcie import PCIE_GT_PER_S, TLP_OVERHEAD_BYTES, PcieLink

__all__ = [
    "StreamFifo",
    "ETH_IP_TCP_OVERHEAD",
    "TcpLink",
    "PCIE_GT_PER_S",
    "TLP_OVERHEAD_BYTES",
    "PcieLink",
]
