"""FPGA stream-channel (AXI-Stream-like FIFO) model.

The Vitis kernels of the bump-in-the-wire application pass data through
stream channels "so data can be passed from one kernel to the next in a
FIFO".  A hardware stream channel is characterised by its word width,
clock frequency and depth; this model derives its sustained rate,
capacity and network-calculus service curve, and converts to both the
measured-stage (:class:`repro.streaming.Stage`) and simulator
(:class:`repro.des.SimStage`) representations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..._validation import check_positive
from ...nc import Curve, constant_rate
from ...streaming import Stage, StageKind

__all__ = ["StreamFifo"]


@dataclass(frozen=True)
class StreamFifo:
    """A width x depth stream channel clocked at ``clock_hz``.

    One word moves per cycle when neither side stalls, so the sustained
    rate is ``width_bytes * clock_hz`` and the buffering capacity is
    ``width_bytes * depth_words``.
    """

    name: str
    width_bytes: int
    depth_words: int
    clock_hz: float

    def __post_init__(self) -> None:
        check_positive("width_bytes", self.width_bytes)
        check_positive("depth_words", self.depth_words)
        check_positive("clock_hz", self.clock_hz)

    @property
    def rate(self) -> float:
        """Sustained throughput in bytes/s (one word per cycle)."""
        return self.width_bytes * self.clock_hz

    @property
    def capacity_bytes(self) -> float:
        """Total buffering the channel provides."""
        return float(self.width_bytes * self.depth_words)

    @property
    def fill_latency(self) -> float:
        """Time to traverse an initially-empty channel (depth cycles)."""
        return self.depth_words / self.clock_hz

    def service_curve(self) -> Curve:
        """Constant-rate service curve of the channel."""
        return constant_rate(self.rate)

    def as_stage(self) -> Stage:
        """The channel as a measured pipeline stage (for the NC model)."""
        return Stage.link(
            self.name,
            self.rate,
            latency=self.fill_latency,
            mtu=float(self.width_bytes),
            kind=StageKind.MEMORY,
        )
