"""k-mer extraction and the query hash table (seed-matching support).

BLASTN's seed-match stage checks "each byte-aligned 8-mer of the
database ... against a hash table constructed from all 8-mers of the
query sequence".  This module provides the vectorised k-mer encoding
(a rolling 2-bit window packed into integers) and the query table that
maps each k-mer value to every query position where it occurs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .twobit import encode_bases

__all__ = ["kmer_values", "KmerTable", "DEFAULT_K"]

#: BLASTN's seed length.
DEFAULT_K = 8


def kmer_values(codes: np.ndarray, k: int = DEFAULT_K, stride: int = 1) -> np.ndarray:
    """Pack every ``stride``-aligned ``k``-mer into an integer.

    ``codes`` is a 2-bit code array; the result has one entry per k-mer
    start position (``len(codes) - k + 1`` positions for stride 1),
    packed big-endian so lexicographic k-mer order matches numeric
    order.  ``stride=4`` gives the paper's byte-aligned database walk
    (four bases per packed byte).
    """
    if k < 1 or k > 31:
        raise ValueError("k must be in 1..31")
    if stride < 1:
        raise ValueError("stride must be >= 1")
    codes = np.asarray(codes, dtype=np.int64)
    n = len(codes) - k + 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    vals = np.zeros(n, dtype=np.int64)
    for j in range(k):
        vals = (vals << 2) | codes[j : j + n]
    return vals[::stride]


@dataclass
class KmerTable:
    """Hash table of all k-mers of a query sequence.

    ``lookup`` answers the seed-match question (does this k-mer occur?);
    ``positions`` answers the seed-enumeration question (at which query
    offsets?).
    """

    k: int
    _table: dict[int, np.ndarray]

    @classmethod
    def from_query(cls, query: str, k: int = DEFAULT_K) -> "KmerTable":
        """Index every (stride-1) k-mer of ``query``."""
        codes = encode_bases(query)
        if len(codes) < k:
            raise ValueError(f"query shorter than k={k}")
        vals = kmer_values(codes, k)
        order = np.argsort(vals, kind="stable")
        sorted_vals = vals[order]
        boundaries = np.flatnonzero(np.diff(sorted_vals)) + 1
        groups = np.split(order, boundaries)
        uniq = sorted_vals[np.concatenate(([0], boundaries))] if len(vals) else []
        table = {int(v): g.astype(np.int64) for v, g in zip(uniq, groups)}
        return cls(k=k, _table=table)

    def lookup(self, value: int) -> bool:
        """True when the k-mer occurs anywhere in the query."""
        return int(value) in self._table

    def positions(self, value: int) -> np.ndarray:
        """All query positions of the k-mer (empty array when absent)."""
        return self._table.get(int(value), np.empty(0, dtype=np.int64))

    def contains_mask(self, values: np.ndarray) -> np.ndarray:
        """Vectorised membership test over an array of k-mer values."""
        values = np.asarray(values, dtype=np.int64)
        if not self._table:
            return np.zeros(len(values), dtype=bool)
        keys = np.fromiter(self._table.keys(), dtype=np.int64, count=len(self._table))
        keys.sort()
        idx = np.searchsorted(keys, values)
        idx = np.clip(idx, 0, len(keys) - 1)
        return keys[idx] == values

    @property
    def n_distinct(self) -> int:
        """Number of distinct k-mers in the query."""
        return len(self._table)

    def __len__(self) -> int:
        return len(self._table)
