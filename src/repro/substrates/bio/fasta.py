"""Minimal FASTA reading/writing for the BLAST substrate.

The BLAST pipeline's input is "the DNA database to be searched,
represented in FASTA format"; this module provides the parsing half of
the ``fa2bit`` pre-processing step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["FastaRecord", "parse_fasta", "write_fasta"]

_VALID = set("ACGTN")


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry: a header (without ``>``) and its sequence."""

    header: str
    sequence: str

    def __post_init__(self) -> None:
        bad = set(self.sequence.upper()) - _VALID
        if bad:
            raise ValueError(f"invalid DNA characters: {sorted(bad)}")

    def __len__(self) -> int:
        return len(self.sequence)


def parse_fasta(text: str) -> list[FastaRecord]:
    """Parse FASTA text into records.

    Sequences are upper-cased; blank lines are ignored; text before the
    first header is rejected.
    """
    records: list[FastaRecord] = []
    header: str | None = None
    chunks: list[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                records.append(FastaRecord(header, "".join(chunks).upper()))
            header = line[1:].strip()
            chunks = []
        else:
            if header is None:
                raise ValueError("sequence data before the first FASTA header")
            chunks.append(line)
    if header is not None:
        records.append(FastaRecord(header, "".join(chunks).upper()))
    return records


def write_fasta(records: Iterable[FastaRecord], width: int = 70) -> str:
    """Render records back to FASTA text with ``width``-column wrapping."""
    if width < 1:
        raise ValueError("width must be >= 1")
    lines: list[str] = []
    for r in records:
        lines.append(f">{r.header}")
        for i in range(0, len(r.sequence), width):
            lines.append(r.sequence[i : i + width])
    return "\n".join(lines) + ("\n" if lines else "")
