"""Match scoring and ungapped extension for BLASTN.

BLASTN scores ungapped alignments with a simple match-reward /
mismatch-penalty scheme; the ungapped-extension stage grows a seed
match "to the left and right, this time allowing scoring of both
matches and mismatches", limited to a fixed window around the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ScoringScheme", "best_ungapped_extension"]


@dataclass(frozen=True)
class ScoringScheme:
    """Match/mismatch rewards used by the extension stages.

    Defaults mirror BLASTN's classic +1/-3 (megablast uses +1/-2; either
    works — the pipeline's filter behaviour, not the exact scores, is
    what feeds the performance model).
    """

    match: int = 1
    mismatch: int = -3

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match reward must be positive")
        if self.mismatch >= 0:
            raise ValueError("mismatch penalty must be negative")


def best_ungapped_extension(
    db: np.ndarray,
    query: np.ndarray,
    p: int,
    q: int,
    seed_len: int,
    scheme: ScoringScheme = ScoringScheme(),
    window: int = 128,
) -> int:
    """Best ungapped-extension score of the seed ``db[p:p+k] == query[q:q+k]``.

    Extends left from ``(p-1, q-1)`` and right from ``(p+k, q+k)``,
    keeping the best prefix score in each direction (classic maximal
    ungapped extension), with both directions confined to ``window``
    bases around the seed (the paper's implementation uses a fixed
    128-base window centred on the seed match).
    """
    if seed_len <= 0:
        raise ValueError("seed_len must be positive")
    if window < seed_len:
        raise ValueError("window must cover at least the seed")
    db = np.asarray(db)
    query = np.asarray(query)
    if not (0 <= p <= len(db) - seed_len and 0 <= q <= len(query) - seed_len):
        raise ValueError("seed lies outside the sequences")

    score = seed_len * scheme.match
    half = (window - seed_len) // 2

    # left extension
    best_left = 0
    running = 0
    for step in range(1, half + 1):
        i, j = p - step, q - step
        if i < 0 or j < 0:
            break
        running += scheme.match if db[i] == query[j] else scheme.mismatch
        if running > best_left:
            best_left = running

    # right extension
    best_right = 0
    running = 0
    for step in range(half + 1):
        i, j = p + seed_len + step, q + seed_len + step
        if i >= len(db) or j >= len(query):
            break
        running += scheme.match if db[i] == query[j] else scheme.mismatch
        if running > best_right:
            best_right = running

    return score + best_left + best_right
