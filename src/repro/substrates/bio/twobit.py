"""``fa2bit``: 2-bit DNA packing (the DIBS pre-processing stage).

The first BLAST pipeline node converts the FASTA database to two bits
per base — a deterministic 4:1 data-volume reduction (the kind of
"natural lossless data compression" the paper normalizes for).  This is
a NumPy-vectorised implementation: encode maps A/C/G/T to 0..3 and
packs four bases per byte; decode reverses it exactly.

Ambiguous ``N`` bases have no 2-bit encoding; following the common
convention for seed-matching pipelines they are rejected here (callers
split sequences on ``N`` runs first).
"""

from __future__ import annotations

import numpy as np

__all__ = ["encode_bases", "decode_bases", "pack_2bit", "unpack_2bit", "fa2bit", "bit2fa"]

_BASE_TO_CODE = np.full(256, 255, dtype=np.uint8)
for _i, _b in enumerate(b"ACGT"):
    _BASE_TO_CODE[_b] = _i
_CODE_TO_BASE = np.frombuffer(b"ACGT", dtype=np.uint8)


def encode_bases(seq: str) -> np.ndarray:
    """Map a DNA string to a ``uint8`` array of 2-bit codes (A=0..T=3)."""
    raw = np.frombuffer(seq.upper().encode("ascii"), dtype=np.uint8)
    codes = _BASE_TO_CODE[raw]
    if np.any(codes == 255):
        bad = sorted(set(chr(c) for c in raw[codes == 255]))
        raise ValueError(f"sequence contains unencodable characters: {bad}")
    return codes


def decode_bases(codes: np.ndarray) -> str:
    """Inverse of :func:`encode_bases`."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max()) > 3:
        raise ValueError("codes must be in 0..3")
    return _CODE_TO_BASE[codes].tobytes().decode("ascii")


def pack_2bit(codes: np.ndarray) -> tuple[bytes, int]:
    """Pack 2-bit codes four-per-byte (first base in the low bits).

    Returns ``(packed, n_bases)`` — the base count is needed because the
    final byte may be partial.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    n = len(codes)
    padded = np.zeros((n + 3) // 4 * 4, dtype=np.uint8)
    padded[:n] = codes
    quads = padded.reshape(-1, 4)
    packed = (
        quads[:, 0]
        | (quads[:, 1] << 2)
        | (quads[:, 2] << 4)
        | (quads[:, 3] << 6)
    ).astype(np.uint8)
    return packed.tobytes(), n


def unpack_2bit(packed: bytes, n_bases: int) -> np.ndarray:
    """Inverse of :func:`pack_2bit`."""
    raw = np.frombuffer(packed, dtype=np.uint8)
    if n_bases < 0 or n_bases > 4 * len(raw):
        raise ValueError(f"n_bases={n_bases} inconsistent with {len(raw)} packed bytes")
    codes = np.empty((len(raw), 4), dtype=np.uint8)
    codes[:, 0] = raw & 3
    codes[:, 1] = (raw >> 2) & 3
    codes[:, 2] = (raw >> 4) & 3
    codes[:, 3] = (raw >> 6) & 3
    return codes.reshape(-1)[:n_bases].copy()


def fa2bit(seq: str) -> tuple[bytes, int]:
    """The full pre-processing stage: DNA string to packed 2-bit bytes."""
    return pack_2bit(encode_bases(seq))


def bit2fa(packed: bytes, n_bases: int) -> str:
    """Inverse of :func:`fa2bit` (exact round trip)."""
    return decode_bases(unpack_2bit(packed, n_bases))
