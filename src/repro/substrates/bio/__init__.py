"""BLASTN computation substrate: the paper's Fig.-2 pipeline, functional.

A real (NumPy-vectorised) implementation of the biosequence pipeline
the BLAST case study models: FASTA parsing, ``fa2bit`` 2-bit packing,
query k-mer hashing, seed matching/enumeration, and the small/ungapped
extension filters — used as the workload generator and filter-ratio
source for the performance model.
"""

from .fasta import FastaRecord, parse_fasta, write_fasta
from .twobit import (
    bit2fa,
    decode_bases,
    encode_bases,
    fa2bit,
    pack_2bit,
    unpack_2bit,
)
from .kmer import DEFAULT_K, KmerTable, kmer_values
from .scoring import ScoringScheme, best_ungapped_extension
from .blastn import BlastHit, BlastnPipeline, StageCounts

__all__ = [
    "FastaRecord",
    "parse_fasta",
    "write_fasta",
    "bit2fa",
    "decode_bases",
    "encode_bases",
    "fa2bit",
    "pack_2bit",
    "unpack_2bit",
    "DEFAULT_K",
    "KmerTable",
    "kmer_values",
    "ScoringScheme",
    "best_ungapped_extension",
    "BlastHit",
    "BlastnPipeline",
    "StageCounts",
]
