"""The staged BLASTN computation (paper Fig. 2), vectorised with NumPy.

Stages mirror the paper's pipeline exactly:

1. **fa2bit** — 2-bit packing (in :mod:`.twobit`, applied by callers);
2. **seed match** — each byte-aligned (stride-4) database 8-mer is
   checked against the query hash table;
3. **seed enumeration** — matching positions are expanded to all
   ``(p, q)`` pairs where the 8-mer occurs in the query;
4. **small extension** — each pair is extended exactly up to 3 bases
   left and right and kept only if the exact match reaches length 11;
5. **ungapped extension** — surviving pairs are scored with
   match/mismatch extension inside a 128-base window and kept above a
   score threshold.

Besides the hits, :meth:`BlastnPipeline.search` reports per-stage
input/output counts: the *filter ratios* that make BLASTN's stages
irregular, which are exactly what the streaming performance model needs
from a workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .kmer import DEFAULT_K, KmerTable, kmer_values
from .scoring import ScoringScheme, best_ungapped_extension
from .twobit import encode_bases

__all__ = ["BlastHit", "StageCounts", "BlastnPipeline"]


@dataclass(frozen=True)
class BlastHit:
    """A reported alignment seed: database/query positions and its score."""

    db_pos: int
    query_pos: int
    score: int


@dataclass
class StageCounts:
    """Items entering/leaving each pipeline stage during one search."""

    seed_match_in: int = 0
    seed_match_out: int = 0
    seed_enum_out: int = 0
    small_ext_out: int = 0
    ungapped_out: int = 0

    def filter_ratios(self) -> dict[str, float]:
        """Output/input ratio of each stage (1.0 when a stage saw nothing)."""

        def ratio(out: int, inp: int) -> float:
            return out / inp if inp else 1.0

        return {
            "seed_match": ratio(self.seed_match_out, self.seed_match_in),
            "seed_enum": ratio(self.seed_enum_out, self.seed_match_out),
            "small_ext": ratio(self.small_ext_out, self.seed_enum_out),
            "ungapped_ext": ratio(self.ungapped_out, self.small_ext_out),
        }


class BlastnPipeline:
    """A query-indexed BLASTN search over 2-bit database sequences."""

    def __init__(
        self,
        query: str,
        *,
        k: int = DEFAULT_K,
        scheme: ScoringScheme = ScoringScheme(),
        window: int = 128,
        score_threshold: int = 16,
        small_ext_min_len: int = 11,
        stride: int = 4,
    ) -> None:
        if score_threshold < 1:
            raise ValueError("score_threshold must be >= 1")
        if small_ext_min_len < k:
            raise ValueError("small_ext_min_len must be >= k")
        self.k = k
        self.scheme = scheme
        self.window = window
        self.score_threshold = score_threshold
        self.small_ext_min_len = small_ext_min_len
        self.stride = stride
        self.query_codes = encode_bases(query)
        self.table = KmerTable.from_query(query, k)

    # ------------------------------------------------------------------ #
    # individual stages (public so the calibration layer can time them
    # in isolation, the paper's measurement methodology)
    # ------------------------------------------------------------------ #

    def seed_match(self, db_codes: np.ndarray) -> np.ndarray:
        """Positions ``p`` whose byte-aligned 8-mer occurs in the query."""
        vals = kmer_values(db_codes, self.k, stride=self.stride)
        mask = self.table.contains_mask(vals)
        return np.flatnonzero(mask).astype(np.int64) * self.stride

    def seed_enumeration(self, db_codes: np.ndarray, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand each matching position to every ``(p, q)`` pair."""
        ps: list[np.ndarray] = []
        qs: list[np.ndarray] = []
        vals = kmer_values(db_codes, self.k)
        for p in positions:
            q = self.table.positions(int(vals[p]))
            if len(q):
                ps.append(np.full(len(q), p, dtype=np.int64))
                qs.append(q)
        if not ps:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(ps), np.concatenate(qs)

    def small_extension(
        self, db_codes: np.ndarray, ps: np.ndarray, qs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Keep pairs whose exact match extends to ``small_ext_min_len``.

        Each seed is extended by up to 3 exactly-matching bases on each
        side (vectorised over all pairs).
        """
        if len(ps) == 0:
            return ps, qs
        db = np.asarray(db_codes, dtype=np.int64)
        q = np.asarray(self.query_codes, dtype=np.int64)
        left = np.zeros(len(ps), dtype=np.int64)
        alive = np.ones(len(ps), dtype=bool)
        for d in range(1, 4):
            pi, qi = ps - d, qs - d
            ok = alive & (pi >= 0) & (qi >= 0)
            same = np.zeros(len(ps), dtype=bool)
            same[ok] = db[pi[ok]] == q[qi[ok]]
            alive &= same
            left += alive.astype(np.int64)
        right = np.zeros(len(ps), dtype=np.int64)
        alive = np.ones(len(ps), dtype=bool)
        for d in range(3):
            pi, qi = ps + self.k + d, qs + self.k + d
            ok = alive & (pi < len(db)) & (qi < len(q))
            same = np.zeros(len(ps), dtype=bool)
            same[ok] = db[pi[ok]] == q[qi[ok]]
            alive &= same
            right += alive.astype(np.int64)
        keep = (self.k + left + right) >= self.small_ext_min_len
        return ps[keep], qs[keep]

    def ungapped_extension(
        self, db_codes: np.ndarray, ps: np.ndarray, qs: np.ndarray
    ) -> list[BlastHit]:
        """Score each surviving pair; keep those above the threshold."""
        hits: list[BlastHit] = []
        for p, q in zip(ps, qs):
            score = best_ungapped_extension(
                db_codes,
                self.query_codes,
                int(p),
                int(q),
                self.k,
                self.scheme,
                self.window,
            )
            if score >= self.score_threshold:
                hits.append(BlastHit(int(p), int(q), int(score)))
        return hits

    # ------------------------------------------------------------------ #

    def search(self, db: "str | np.ndarray") -> tuple[list[BlastHit], StageCounts]:
        """Run the full staged search over a database sequence."""
        db_codes = encode_bases(db) if isinstance(db, str) else np.asarray(db)
        counts = StageCounts()
        n_kmers = max(0, (len(db_codes) - self.k) // self.stride + 1)
        counts.seed_match_in = n_kmers

        positions = self.seed_match(db_codes)
        counts.seed_match_out = len(positions)

        ps, qs = self.seed_enumeration(db_codes, positions)
        counts.seed_enum_out = len(ps)

        ps, qs = self.small_extension(db_codes, ps, qs)
        counts.small_ext_out = len(ps)

        hits = self.ungapped_extension(db_codes, ps, qs)
        counts.ungapped_out = len(hits)
        return hits, counts
