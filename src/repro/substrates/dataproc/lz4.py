"""LZ4 block-format compressor and decompressor (pure Python).

The paper's bump-in-the-wire application offloads the Vitis streaming
LZ4 kernel; this module implements the same algorithm — the documented
LZ4 *block* format — so the measurement methodology (isolated
throughput, observed compression ratios) can be exercised end-to-end on
real data:

* sequences of ``[token][literal-length*][literals][offset][match-length*]``,
* 4-byte minimum matches found through a hash table of recent positions,
* 16-bit match offsets (64 KiB window),
* end-of-block rules: the last 5 bytes are always literals and no match
  may start within the last 12 bytes.

The compressor is greedy (like the reference ``LZ4_compress_default``)
and the decompressor handles overlapping copies byte-exactly, so
``decompress_block(compress_block(x), len(x)) == x`` for arbitrary
bytes — property-tested in the suite.
"""

from __future__ import annotations

__all__ = ["compress_block", "decompress_block", "compression_ratio", "CorruptBlockError"]

_MIN_MATCH = 4
_MFLIMIT = 12  # no match may start within this many bytes of the end
_LAST_LITERALS = 5
_MAX_OFFSET = 0xFFFF
_HASH_LOG = 16


class CorruptBlockError(ValueError):
    """Raised when a compressed block cannot be decoded."""


def _hash(seq: int) -> int:
    # Fibonacci hashing of a 32-bit little-endian window (reference-style)
    return ((seq * 2654435761) & 0xFFFFFFFF) >> (32 - _HASH_LOG)


def _write_length(n: int, out: bytearray) -> None:
    """LZ4 extended-length encoding: 255-bytes then the remainder."""
    while n >= 255:
        out.append(255)
        n -= 255
    out.append(n)


def compress_block(data: bytes) -> bytes:
    """Compress ``data`` into an LZ4 block.

    Never fails: incompressible input degrades to a literal-only block
    (slightly larger than the input, as in the real format).
    """
    data = bytes(data)
    n = len(data)
    out = bytearray()
    if n == 0:
        # a single empty-literal token terminates the block
        out.append(0)
        return bytes(out)

    table: dict[int, int] = {}
    anchor = 0  # start of pending literals
    i = 0
    limit = n - _MFLIMIT

    while i <= limit and n >= _MFLIMIT + 1:
        seq = int.from_bytes(data[i : i + 4], "little")
        h = _hash(seq)
        cand = table.get(h, -1)
        table[h] = i
        if (
            cand >= 0
            and i - cand <= _MAX_OFFSET
            and data[cand : cand + 4] == data[i : i + 4]
        ):
            # extend the match forward, stopping before the tail region
            match_len = 4
            max_len = (n - _LAST_LITERALS) - i
            while (
                match_len < max_len
                and data[cand + match_len] == data[i + match_len]
            ):
                match_len += 1
            # emit sequence: literals [anchor, i) then the match
            lit_len = i - anchor
            token_lit = 15 if lit_len >= 15 else lit_len
            token_match = 15 if match_len - _MIN_MATCH >= 15 else match_len - _MIN_MATCH
            out.append((token_lit << 4) | token_match)
            if lit_len >= 15:
                _write_length(lit_len - 15, out)
            out += data[anchor:i]
            out += (i - cand).to_bytes(2, "little")
            if match_len - _MIN_MATCH >= 15:
                _write_length(match_len - _MIN_MATCH - 15, out)
            i += match_len
            anchor = i
        else:
            i += 1

    # final literal run
    lit_len = n - anchor
    token_lit = 15 if lit_len >= 15 else lit_len
    out.append(token_lit << 4)
    if lit_len >= 15:
        _write_length(lit_len - 15, out)
    out += data[anchor:]
    return bytes(out)


def _read_length(buf: bytes, pos: int, base: int) -> tuple[int, int]:
    length = base
    if base == 15:
        while True:
            if pos >= len(buf):
                raise CorruptBlockError("truncated length encoding")
            b = buf[pos]
            pos += 1
            length += b
            if b != 255:
                break
    return length, pos


def decompress_block(block: bytes, max_size: int) -> bytes:
    """Decode an LZ4 block into at most ``max_size`` bytes.

    Raises :class:`CorruptBlockError` on malformed input (truncated
    sequences, offsets pointing before the output start, or output
    exceeding ``max_size``).
    """
    if max_size < 0:
        raise ValueError("max_size must be >= 0")
    block = bytes(block)
    out = bytearray()
    pos = 0
    n = len(block)
    if n == 0:
        raise CorruptBlockError("empty input is not a valid block")

    while pos < n:
        token = block[pos]
        pos += 1
        lit_len, pos = _read_length(block, pos, token >> 4)
        if pos + lit_len > n:
            raise CorruptBlockError("literal run past end of block")
        out += block[pos : pos + lit_len]
        pos += lit_len
        if len(out) > max_size:
            raise CorruptBlockError(f"output exceeds max_size={max_size}")
        if pos == n:
            break  # final literal-only sequence
        if pos + 2 > n:
            raise CorruptBlockError("truncated match offset")
        offset = int.from_bytes(block[pos : pos + 2], "little")
        pos += 2
        if offset == 0 or offset > len(out):
            raise CorruptBlockError(f"invalid match offset {offset}")
        match_len, pos = _read_length(block, pos, token & 0x0F)
        match_len += _MIN_MATCH
        if len(out) + match_len > max_size:
            raise CorruptBlockError(f"output exceeds max_size={max_size}")
        src = len(out) - offset
        if offset >= match_len:
            out += out[src : src + match_len]
        else:
            # overlapping copy: byte-at-a-time replication
            for k in range(match_len):
                out.append(out[src + k])
    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """Achieved ratio ``len(data) / len(compressed)`` (>= values near 1)."""
    if len(data) == 0:
        return 1.0
    return len(data) / len(compress_block(data))
