"""Block-cipher chaining: CBC mode with PKCS#7 padding.

The paper's kernel is a 256-bit **CBC** AES engine; CBC is inherently
sequential on encrypt (each block chains the previous ciphertext),
which is exactly why the hardware kernel — and our model of it — is the
pipeline's throughput bottleneck.
"""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE

__all__ = ["pkcs7_pad", "pkcs7_unpad", "cbc_encrypt", "cbc_decrypt", "PaddingError"]


class PaddingError(ValueError):
    """Raised when PKCS#7 padding is malformed on decryption."""


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding up to a multiple of ``block_size``."""
    if not 1 <= block_size <= 255:
        raise ValueError("block_size must be in [1, 255]")
    pad = block_size - (len(data) % block_size)
    return bytes(data) + bytes([pad]) * pad


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if len(data) == 0 or len(data) % block_size != 0:
        raise PaddingError("padded data must be a positive multiple of the block size")
    pad = data[-1]
    if not 1 <= pad <= block_size:
        raise PaddingError(f"invalid padding byte {pad}")
    if data[-pad:] != bytes([pad]) * pad:
        raise PaddingError("inconsistent padding bytes")
    return bytes(data[:-pad])


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC encrypt with PKCS#7 padding; returns the ciphertext."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    cipher = AES(key)
    data = pkcs7_pad(plaintext)
    out = bytearray()
    prev = bytes(iv)
    for i in range(0, len(data), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(data[i : i + BLOCK_SIZE], prev))
        prev = cipher.encrypt_block(block)
        out += prev
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """AES-CBC decrypt and strip PKCS#7 padding; returns the plaintext."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    if len(ciphertext) == 0 or len(ciphertext) % BLOCK_SIZE != 0:
        raise ValueError("ciphertext must be a positive multiple of the block size")
    cipher = AES(key)
    out = bytearray()
    prev = bytes(iv)
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        plain = cipher.decrypt_block(block)
        out += bytes(a ^ b for a, b in zip(plain, prev))
        prev = block
    return pkcs7_unpad(bytes(out))
