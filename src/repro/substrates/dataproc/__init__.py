"""Data-processing kernels for the bump-in-the-wire substrate.

Real, pure-Python implementations of the two Vitis kernels the paper
offloads — the LZ4 block codec and AES (CBC) — plus the stream-chunking
utilities used to measure compression-ratio statistics.
"""

from .lz4 import CorruptBlockError, compress_block, compression_ratio, decompress_block
from .aes import AES, BLOCK_SIZE
from .modes import PaddingError, cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad
from .chunking import RatioStats, chunk_stream, measure_chunked_ratios

__all__ = [
    "CorruptBlockError",
    "compress_block",
    "compression_ratio",
    "decompress_block",
    "AES",
    "BLOCK_SIZE",
    "PaddingError",
    "cbc_decrypt",
    "cbc_encrypt",
    "pkcs7_pad",
    "pkcs7_unpad",
    "RatioStats",
    "chunk_stream",
    "measure_chunked_ratios",
]
