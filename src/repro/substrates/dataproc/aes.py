"""AES block cipher core (pure Python, FIPS-197).

The bump-in-the-wire pipeline offloads a 256-bit AES kernel; this is a
complete, test-vector-verified implementation of the AES core for all
three key sizes (128/192/256), used by :mod:`.modes` for the CBC mode
the paper's kernel runs, and by the calibration layer as a measurable
stand-in kernel.

The implementation follows the specification directly (S-box, shift
rows, xtime-based mix columns, key expansion with round constants); it
optimises only the obvious (precomputed S-boxes as ``bytes`` tables).
It is *not* constant-time and must not be used to protect real data —
it exists to exercise the performance-measurement code paths.
"""

from __future__ import annotations

__all__ = ["AES", "BLOCK_SIZE"]

#: AES block size in bytes.
BLOCK_SIZE = 16

# ---- S-box generation (from the multiplicative inverse in GF(2^8)) ---- #


def _build_sboxes() -> tuple[bytes, bytes]:
    # multiplicative inverse table via exp/log over generator 3
    exp = [0] * 510
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by the generator 0x03 = x * 2 ^ x
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 510):
        exp[i] = exp[i - 255]

    def inv(a: int) -> int:
        return 0 if a == 0 else exp[255 - log[a]]

    sbox = bytearray(256)
    for a in range(256):
        b = inv(a)
        # affine transformation
        s = b
        for _ in range(4):
            b = ((b << 1) | (b >> 7)) & 0xFF
            s ^= b
        sbox[a] = s ^ 0x63
    inv_sbox = bytearray(256)
    for a, s in enumerate(sbox):
        inv_sbox[s] = a
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sboxes()


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _mul(a: int, b: int) -> int:
    """GF(2^8) multiplication (schoolbook; used in inverse mix columns)."""
    out = 0
    while b:
        if b & 1:
            out ^= a
        a = _xtime(a)
        b >>= 1
    return out


class AES:
    """The AES block cipher with a fixed key.

    ``encrypt_block``/``decrypt_block`` operate on exactly 16 bytes;
    chaining modes live in :mod:`repro.substrates.dataproc.modes`.
    """

    def __init__(self, key: bytes) -> None:
        key = bytes(key)
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = key
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    # ------------------------------------------------------------------ #
    # key schedule
    # ------------------------------------------------------------------ #

    def _expand_key(self, key: bytes) -> list[list[int]]:
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        rcon = 1
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= rcon
                rcon = _xtime(rcon)
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]  # extra SubWord for AES-256
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        # group into 16-byte round keys
        return [
            [b for w in words[4 * r : 4 * r + 4] for b in w]
            for r in range(self.rounds + 1)
        ]

    # ------------------------------------------------------------------ #
    # round primitives (state is a flat list of 16 bytes, column-major
    # as in the standard: state[r + 4c])
    # ------------------------------------------------------------------ #

    @staticmethod
    def _shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(s: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(4):
            a = s[4 * c : 4 * c + 4]
            t = a[0] ^ a[1] ^ a[2] ^ a[3]
            out[4 * c + 0] = a[0] ^ t ^ _xtime(a[0] ^ a[1])
            out[4 * c + 1] = a[1] ^ t ^ _xtime(a[1] ^ a[2])
            out[4 * c + 2] = a[2] ^ t ^ _xtime(a[2] ^ a[3])
            out[4 * c + 3] = a[3] ^ t ^ _xtime(a[3] ^ a[0])
        return out

    @staticmethod
    def _inv_mix_columns(s: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(4):
            a = s[4 * c : 4 * c + 4]
            out[4 * c + 0] = _mul(a[0], 14) ^ _mul(a[1], 11) ^ _mul(a[2], 13) ^ _mul(a[3], 9)
            out[4 * c + 1] = _mul(a[0], 9) ^ _mul(a[1], 14) ^ _mul(a[2], 11) ^ _mul(a[3], 13)
            out[4 * c + 2] = _mul(a[0], 13) ^ _mul(a[1], 9) ^ _mul(a[2], 14) ^ _mul(a[3], 11)
            out[4 * c + 3] = _mul(a[0], 11) ^ _mul(a[1], 13) ^ _mul(a[2], 9) ^ _mul(a[3], 14)
        return out

    # ------------------------------------------------------------------ #

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        s = [b ^ k for b, k in zip(block, self._round_keys[0])]
        for rnd in range(1, self.rounds):
            s = [_SBOX[b] for b in s]
            s = self._shift_rows(s)
            s = self._mix_columns(s)
            s = [b ^ k for b, k in zip(s, self._round_keys[rnd])]
        s = [_SBOX[b] for b in s]
        s = self._shift_rows(s)
        s = [b ^ k for b, k in zip(s, self._round_keys[self.rounds])]
        return bytes(s)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        s = [b ^ k for b, k in zip(block, self._round_keys[self.rounds])]
        s = self._inv_shift_rows(s)
        s = [_INV_SBOX[b] for b in s]
        for rnd in range(self.rounds - 1, 0, -1):
            s = [b ^ k for b, k in zip(s, self._round_keys[rnd])]
            s = self._inv_mix_columns(s)
            s = self._inv_shift_rows(s)
            s = [_INV_SBOX[b] for b in s]
        s = [b ^ k for b, k in zip(s, self._round_keys[0])]
        return bytes(s)
