"""Stream chunking for the bump-in-the-wire data path.

The paper notes that LZ4 over a *stream* requires chunking the data and
that "chunked data may reduce similarity for the overall dataset which
in turn will reduce the effectiveness of compression".
:func:`chunk_stream` performs the split and
:func:`measure_chunked_ratios` quantifies that effect — it is how the
2.2x/1.0x/5.3x-style ratio statistics feeding the model are obtained
from real corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .lz4 import compress_block

__all__ = ["chunk_stream", "RatioStats", "measure_chunked_ratios"]


def chunk_stream(data: bytes, chunk_size: int) -> Iterator[bytes]:
    """Split ``data`` into consecutive chunks of at most ``chunk_size``."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    for i in range(0, len(data), chunk_size):
        yield data[i : i + chunk_size]


@dataclass(frozen=True)
class RatioStats:
    """Compression-ratio statistics over a chunked stream."""

    min: float
    avg: float
    max: float
    chunks: int

    def as_volume_ratio(self):
        """Convert to the model's scenario-aligned :class:`VolumeRatio`."""
        from ...streaming import VolumeRatio

        return VolumeRatio.from_compression(self.avg, self.min, self.max)


def measure_chunked_ratios(data: bytes, chunk_size: int) -> RatioStats:
    """Per-chunk compression ratios of ``data`` under ``chunk_size`` chunking.

    The *average* is volume-weighted (total in / total out), matching how
    a deployment would observe it; min/max are per-chunk extremes.
    """
    ratios: list[float] = []
    total_in = 0
    total_out = 0
    for chunk in chunk_stream(data, chunk_size):
        comp = compress_block(chunk)
        ratios.append(len(chunk) / len(comp))
        total_in += len(chunk)
        total_out += len(comp)
    if not ratios:
        raise ValueError("cannot measure ratios of empty data")
    return RatioStats(
        min=min(ratios),
        avg=total_in / total_out,
        max=max(ratios),
        chunks=len(ratios),
    )
