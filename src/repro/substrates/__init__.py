"""Substrate implementations the case studies are built from.

* :mod:`repro.substrates.bio` — the BLASTN computation pipeline;
* :mod:`repro.substrates.dataproc` — LZ4 and AES-CBC kernels;
* :mod:`repro.substrates.net` — stream FIFO, TCP, and PCIe link models.
"""
