"""Bound-vs-observed conformance: replay DES observations against NC bounds.

The paper's validity claim is falsifiable: for a correctly modelled
pipeline, every discrete-event observation must respect the
network-calculus envelopes.  This module replays a finished simulation
against the model and reports every violation it finds — a true
violation is a bug in one of the two engines (or in the model wiring
between them), which makes this correctness tooling for both.

Checks
------
``delay.end_to_end``
    observed virtual delays (horizontal deviation between the cumulative
    arrival and departure records — the per-job latency the bound
    ``d = h(alpha, beta)`` constrains) against the delay bound;
``arrival.source``
    observed cumulative arrivals against ``alpha(t) + l_max`` — from the
    origin and over a sample of sliding windows (``l_max`` is one source
    packet: admission is packet-granular while ``alpha`` is fluid);
``backlog.system``
    the total-resident-bytes step series against the backlog bound ``x``;
``queue.<stage>``
    each stage's input-queue high-water mark against the system backlog
    bound (each queue is part of the system backlog, so this is sound;
    its per-stage margins show *where* the bound's slack lives);
``service.<stage>``
    recorded per-job service spans against the modelled per-job
    execution-time range (catches model-to-simulator wiring bugs).

In the transient regime (``R_alpha > R_beta``) the asymptotic bounds are
infinite and the paper's closed-form *estimates* take their place; the
report flags this (``bounds_are_estimates``) — there, a violation
falsifies the paper's transient hypothesis rather than a theorem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from ..nc import backlog_bound as nc_backlog_bound
from ..nc import delay_bound as nc_delay_bound
from ..nc import eval_batch
from ..nc.curve import Curve
from ..streaming.analysis import AnalysisReport, analyze
from ..streaming.model import build_model
from ..streaming.pipeline import Pipeline
from ..units import format_bytes, format_seconds
from .probe import MultiProbe, ServiceLog, SimProbe

if TYPE_CHECKING:  # pragma: no cover
    from ..des.report import SimulationReport

__all__ = [
    "Violation",
    "CheckResult",
    "ConformanceReport",
    "check_delay",
    "check_arrivals",
    "check_backlog",
    "check_queues",
    "check_stage_service",
    "evaluate_conformance",
    "run_conformance",
    "valid_bounds",
]

#: right-limit nudge for evaluating curves at jump points (seconds)
_EPS = 1e-12


@dataclass(frozen=True)
class Violation:
    """One observation that exceeded its bound."""

    check: str
    stage: str
    time: float
    observed: float
    bound: float

    @property
    def message(self) -> str:
        return (
            f"{self.check}: stage {self.stage!r} at t={self.time:.9g} s "
            f"observed {self.observed:.9g} > bound {self.bound:.9g}"
        )


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one conformance check."""

    name: str
    stage: str
    n_observations: int
    worst_observed: float
    bound: float
    violations: tuple[Violation, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def margin(self) -> float:
        """Relative slack ``(bound - worst) / bound`` — how loose the
        bound is here (negative means violated)."""
        if not math.isfinite(self.bound) or self.bound <= 0:
            return math.nan
        return (self.bound - self.worst_observed) / self.bound

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "stage": self.stage,
            "n_observations": self.n_observations,
            "worst_observed": self.worst_observed,
            "bound": self.bound,
            "margin": None if math.isnan(self.margin) else self.margin,
            "n_violations": len(self.violations),
        }


@dataclass(frozen=True)
class ConformanceReport:
    """Every check's outcome for one (analysis, simulation) pair."""

    pipeline_name: str
    bounds_are_estimates: bool
    checks: tuple[CheckResult, ...]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def violations(self) -> tuple[Violation, ...]:
        return tuple(v for c in self.checks for v in c.violations)

    def check(self, name: str) -> CheckResult:
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(name)

    def to_dict(self) -> dict[str, Any]:
        """Compact JSON-able verdict (sweep artifact row)."""
        delay = next((c for c in self.checks if c.name == "delay.end_to_end"), None)
        return {
            "ok": self.ok,
            "estimate": self.bounds_are_estimates,
            "n_violations": len(self.violations),
            "delay_margin": (
                None
                if delay is None or math.isnan(delay.margin)
                else delay.margin
            ),
            "checks": {c.name: c.to_dict() for c in self.checks},
        }

    def summary(self) -> str:
        """Human-readable verdict table plus every violation message."""
        kind = "estimates (transient regime)" if self.bounds_are_estimates else "bounds"
        lines = [
            f"== conformance: {self.pipeline_name} ==",
            f"model {kind}; {len(self.checks)} checks, "
            f"{len(self.violations)} violation(s)",
            f"{'check':<26} {'n':>6} {'worst':>12} {'bound':>12} "
            f"{'margin':>8}  verdict",
        ]
        for c in self.checks:
            if c.name.startswith(("delay", "service")):
                worst, bound = format_seconds(c.worst_observed), format_seconds(c.bound)
            else:
                worst, bound = format_bytes(c.worst_observed), format_bytes(c.bound)
            margin = "-" if math.isnan(c.margin) else f"{c.margin:7.1%}"
            verdict = "ok" if c.ok else f"FAIL({len(c.violations)})"
            lines.append(
                f"{c.name:<26} {c.n_observations:>6} {worst:>12} {bound:>12} "
                f"{margin:>8}  {verdict}"
            )
        for v in self.violations:
            lines.append(f"  VIOLATION {v.message}")
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# individual checks
# --------------------------------------------------------------------- #


def check_delay(
    sim: "SimulationReport",
    bound: float,
    *,
    skip_initial_fraction: float = 0.0,
    levels: int = 512,
    rtol: float = 1e-3,
) -> CheckResult:
    """Observed virtual delays vs the delay bound.

    Samples the horizontal deviation between the cumulative arrival and
    departure records at ``levels`` byte levels (the same quantity
    :meth:`SimulationReport.observed_virtual_delays` reports, kept here
    with its departure times so violations can be located in time).
    ``skip_initial_fraction`` discards the pipeline-fill transient,
    matching the paper's steady-state observation window.
    """
    at, ac = sim.arrivals.arrays()
    dt, dc = sim.departures.arrays()
    total = sim.output_bytes
    if total <= 0:
        return CheckResult("delay.end_to_end", "end-to-end", 0, math.nan, bound)
    if not 0.0 <= skip_initial_fraction < 1.0:
        raise ValueError("skip_initial_fraction must be in [0, 1)")
    y0 = max(total / levels, total * skip_initial_fraction)
    ys = np.linspace(y0, total, levels)
    ai = np.clip(np.searchsorted(ac, ys - 1e-9, side="left"), 0, len(at) - 1)
    di = np.clip(np.searchsorted(dc, ys - 1e-9, side="left"), 0, len(dt) - 1)
    delays = np.maximum(0.0, dt[di] - at[ai])
    worst = float(np.max(delays))
    bad = np.nonzero(delays > bound * (1.0 + rtol))[0]
    violations = tuple(
        Violation("delay.end_to_end", "end-to-end", float(dt[di[i]]),
                  float(delays[i]), bound)
        for i in bad[:8]
    )
    return CheckResult(
        "delay.end_to_end", "end-to-end", len(ys), worst, bound, violations
    )


def check_arrivals(
    sim: "SimulationReport",
    alpha: Curve,
    l_max: float,
    *,
    max_windows: int = 256,
    rtol: float = 1e-3,
) -> CheckResult:
    """Observed cumulative arrivals vs ``alpha(t) + l_max``.

    Checks the arrival record from the origin at every step, and over
    all pairwise windows of a ``<= max_windows``-point decimation (the
    arrival-curve statement constrains *every* window, not just those
    anchored at zero).  ``l_max`` absorbs packet-granular admission.
    """
    at, ac = sim.arrivals.arrays()
    n = len(at)
    if n == 0 or ac[-1] <= 0:
        return CheckResult("arrival.source", "source", 0, 0.0, l_max)
    slack = l_max * (1.0 + rtol) + rtol * float(ac[-1])

    # from-origin: A(t) <= alpha(t+) + l_max at every recorded step
    env0 = eval_batch(alpha, at + _EPS) + l_max
    bad0 = np.nonzero(ac > env0 + rtol * np.maximum(1.0, env0))[0]

    # windowed: decimate, then test all i<j increments
    idx = np.unique(np.linspace(0, n - 1, min(n, max_windows)).astype(int))
    t_s, c_s = at[idx], ac[idx]
    lag = t_s[None, :] - t_s[:, None]
    inc = c_s[None, :] - c_s[:, None]
    upper = np.triu(np.ones_like(lag, dtype=bool), k=1)
    env = eval_batch(alpha, np.maximum(lag, 0.0) + _EPS).reshape(lag.shape) + l_max
    viol_w = upper & (inc > env + rtol * np.maximum(1.0, env))

    worst_excess = float(np.max(np.concatenate([
        (ac - env0), (inc - env)[upper].ravel() if upper.any() else np.array([-np.inf])
    ])))
    violations: list[Violation] = [
        Violation("arrival.source", "source", float(at[i]), float(ac[i]),
                  float(env0[i]))
        for i in bad0[:4]
    ]
    for i, j in zip(*np.nonzero(viol_w)):
        if len(violations) >= 8:
            break
        violations.append(
            Violation("arrival.source", "source", float(t_s[j]), float(inc[i, j]),
                      float(env[i, j]))
        )
    # worst_observed reports the largest envelope excess (<= 0 when
    # conformant); the "bound" column is the packet slack for context
    return CheckResult(
        "arrival.source", "source", int(n + viol_w.size), worst_excess + l_max,
        l_max, tuple(violations)
    )


def check_backlog(
    sim: "SimulationReport", bound: float, *, rtol: float = 1e-3
) -> CheckResult:
    """Total resident bytes (the backlog step series) vs the bound ``x``."""
    times, values = sim.backlog.arrays()
    worst = float(np.max(values)) if len(values) else 0.0
    bad = np.nonzero(values > bound * (1.0 + rtol))[0]
    violations = tuple(
        Violation("backlog.system", "system", float(times[i]), float(values[i]), bound)
        for i in bad[:8]
    )
    return CheckResult(
        "backlog.system", "system", len(values), worst, bound, violations
    )


def check_queues(
    sim: "SimulationReport", bound: float, *, rtol: float = 1e-3
) -> list[CheckResult]:
    """Each stage's input-queue high-water mark vs the system backlog bound.

    Sound because every queue's occupancy is part of the system backlog;
    the per-stage margins localise where the backlog bound's slack (or a
    violation) lives.
    """
    out: list[CheckResult] = []
    for s in sim.stages:
        worst = s.max_queue_bytes
        violations: tuple[Violation, ...] = ()
        if worst > bound * (1.0 + rtol):
            violations = (
                Violation(f"queue.{s.name}", s.name, math.nan, worst, bound),
            )
        out.append(
            CheckResult(f"queue.{s.name}", s.name, s.jobs, worst, bound, violations)
        )
    return out


def check_stage_service(
    spans: Sequence[tuple[str, float, float, float, bool]],
    service_bounds: Mapping[str, tuple[float, float, float]],
    *,
    rtol: float = 1e-3,
) -> list[CheckResult]:
    """Recorded per-job service spans vs the modelled execution-time range.

    ``service_bounds`` maps each stage to ``(t_min, t_max, startup)``;
    a job may take at most ``t_max`` (plus ``startup`` for the stage's
    first job) and at least ``t_min * (1 - rtol)``.  Violations here
    mean the simulator is not executing the model it was given.
    """
    by_stage: dict[str, list[tuple[float, float, bool]]] = {}
    for stage, t0, t1, _nbytes, first in spans:
        by_stage.setdefault(stage, []).append((t0, t1, first))
    out: list[CheckResult] = []
    for stage in service_bounds:
        if stage not in by_stage:
            continue
        t_min, t_max, startup = service_bounds[stage]
        worst = 0.0
        violations: list[Violation] = []
        for t0, t1, first in by_stage[stage]:
            dur = t1 - t0
            hi = t_max + (startup if first else 0.0)
            worst = max(worst, dur)
            if dur > hi * (1.0 + rtol) or dur < t_min * (1.0 - rtol) - _EPS:
                if len(violations) < 8:
                    violations.append(
                        Violation(f"service.{stage}", stage, t1, dur, hi)
                    )
        out.append(
            CheckResult(
                f"service.{stage}",
                stage,
                len(by_stage[stage]),
                worst,
                t_max + startup,
                tuple(violations),
            )
        )
    return out


# --------------------------------------------------------------------- #
# bound selection and top-level drivers
# --------------------------------------------------------------------- #


def valid_bounds(pipeline: Pipeline) -> tuple[float, float, Curve, bool]:
    """``(delay, backlog, alpha, is_estimate)`` to check a DES run against.

    Stable pipelines get the theoretically valid floor for a
    job-granular, smoothly-fed system: per-node *packetized* curves with
    conservative aggregation, taking the tighter of the convolved and
    recursion system curves.  Unstable (transient-regime) pipelines get
    the paper's closed-form estimates, flagged as such.
    """
    model = build_model(pipeline, packetized=True, conservative_aggregation=True)
    if model.stable:
        beta_valid = model.beta_convolved.minimum(model.beta_system)
        return (
            nc_delay_bound(model.alpha, beta_valid),
            nc_backlog_bound(model.alpha, beta_valid),
            model.alpha,
            False,
        )
    rep = analyze(pipeline, packetized=False)
    return rep.delay_bound, rep.backlog_bound, rep.alpha, True


def evaluate_conformance(
    pipeline_name: str,
    sim: "SimulationReport",
    *,
    delay: float,
    backlog: float,
    alpha: Curve,
    l_max: float,
    estimates: bool = False,
    spans: Sequence[tuple[str, float, float, float, bool]] | None = None,
    service_bounds: Mapping[str, tuple[float, float, float]] | None = None,
    skip_initial_fraction: float = 0.15,
    rtol: float = 1e-3,
) -> ConformanceReport:
    """Run every applicable check over a finished simulation."""
    checks: list[CheckResult] = [
        check_delay(
            sim, delay, skip_initial_fraction=skip_initial_fraction, rtol=rtol
        ),
        check_arrivals(sim, alpha, l_max, rtol=rtol),
        check_backlog(sim, backlog, rtol=rtol),
    ]
    checks.extend(check_queues(sim, backlog, rtol=rtol))
    if spans is not None and service_bounds:
        checks.extend(check_stage_service(spans, service_bounds, rtol=rtol))
    return ConformanceReport(pipeline_name, estimates, tuple(checks))


def _service_bounds_of(sim_stages) -> dict[str, tuple[float, float, float]]:
    """Per-stage ``(t_min, t_max, startup)`` from the simulator stages.

    Distributions expose their support as ``lo``/``hi`` attributes;
    stages with a custom (unbounded) distribution are skipped.
    """
    out: dict[str, tuple[float, float, float]] = {}
    for st in sim_stages:
        lo = getattr(st.service, "lo", None)
        hi = getattr(st.service, "hi", None)
        if lo is not None and hi is not None:
            out[st.name] = (float(lo), float(hi), st.startup_latency)
    return out


def run_conformance(
    pipeline: Pipeline,
    *,
    workload: float,
    run_pipeline: Pipeline | None = None,
    seed: int | None = 42,
    queue_bytes: Mapping[str, float] | None = None,
    scenario: str = "avg",
    skip_initial_fraction: float = 0.15,
    rtol: float = 1e-3,
    probe: SimProbe | None = None,
) -> ConformanceReport:
    """Analyse, simulate, and cross-check one pipeline end to end.

    ``pipeline`` supplies the model (bounds and arrival curve);
    ``run_pipeline`` optionally overrides the simulated system (the
    paper's deployed variants pace their source below the modelled
    envelope — the bounds must still hold).  Extra probes (a tracer, a
    metrics registry) ride along via ``probe``.
    """
    from ..streaming.simulation import to_simulation

    delay, backlog, alpha, estimates = valid_bounds(pipeline)
    log = ServiceLog()
    probes: SimProbe = log if probe is None else MultiProbe([log, probe])
    experiment = to_simulation(
        run_pipeline if run_pipeline is not None else pipeline,
        workload=workload,
        seed=seed,
        queue_bytes=queue_bytes,
        scenario=scenario,
        probe=probes,
    )
    sim = experiment.run()
    return evaluate_conformance(
        pipeline.name,
        sim,
        delay=delay,
        backlog=backlog,
        alpha=alpha,
        l_max=(run_pipeline or pipeline).source.packet_bytes,
        estimates=estimates,
        spans=log.spans,
        service_bounds=_service_bounds_of(experiment.stages),
        skip_initial_fraction=skip_initial_fraction,
        rtol=rtol,
    )
