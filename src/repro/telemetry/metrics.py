"""Metrics: counters, gauges, fixed-bucket histograms, and a registry.

The registry captures what the DES aggregates throw away: per-stage
service-time *distributions*, per-job end-to-end latency distributions,
and queue-occupancy extrema.  Everything is fixed-allocation — a
histogram is a NumPy count vector over immutable bucket edges — so the
instrumented hot path does an ``searchsorted`` and an increment, never
an append.

:class:`SimMetrics` adapts the registry to the
:class:`~repro.telemetry.probe.SimProbe` protocol; snapshots are plain
JSON-able dicts so they flow into sweep artifacts unchanged.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

import numpy as np

from .probe import SimProbe

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SimMetrics",
    "log_bucket_edges",
]


def log_bucket_edges(
    lo: float = 1e-7, hi: float = 1e3, per_decade: int = 3
) -> tuple[float, ...]:
    """Geometric bucket edges spanning ``[lo, hi]``.

    The default (100 ns .. 1000 s, 3 per decade) covers every service
    time and latency in the paper's two applications with ~31 buckets.
    """
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    n = int(round(math.log10(hi / lo) * per_decade)) + 1
    ratio = (hi / lo) ** (1.0 / (n - 1))
    return tuple(lo * ratio**i for i in range(n))


class Counter:
    """A monotonically increasing count (events, bytes, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A settable level; tracks the extremes it visited."""

    __slots__ = ("value", "max", "min", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.max = -math.inf
        self.min = math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    def snapshot(self) -> dict[str, Any]:
        empty = self.updates == 0
        return {
            "type": "gauge",
            "value": self.value,
            "max": None if empty else self.max,
            "min": None if empty else self.min,
            "updates": self.updates,
        }


class Histogram:
    """Fixed-bucket histogram with under/overflow buckets and moments.

    ``edges`` (length ``k``) define ``k + 1`` counts: bucket 0 is the
    underflow ``(-inf, edges[0])``, bucket ``i`` covers
    ``[edges[i-1], edges[i])``, and the last is the overflow
    ``[edges[-1], inf)``.  Exact min/max/sum/count ride along so the
    extremes are never quantised away.
    """

    __slots__ = ("edges", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, edges: Iterable[float]) -> None:
        e = np.asarray(tuple(edges), dtype=float)
        if e.ndim != 1 or len(e) < 2:
            raise ValueError("need at least two bucket edges")
        if not np.all(np.diff(e) > 0):
            raise ValueError("bucket edges must be strictly increasing")
        self.edges = e
        self.counts = np.zeros(len(e) + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        self.counts[int(np.searchsorted(self.edges, value, side="right"))] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Bucket-upper-edge estimate of the ``q``-quantile (0..1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return math.nan
        target = q * self.count
        cum = np.cumsum(self.counts)
        i = int(np.searchsorted(cum, target, side="left"))
        if i == 0:
            return float(self.edges[0])
        if i >= len(self.edges):
            return self.vmax
        return float(self.edges[i])

    def nonempty_buckets(self) -> list[tuple[float, float, int]]:
        """``(lo, hi, count)`` for buckets holding at least one sample."""
        out: list[tuple[float, float, int]] = []
        lo = -math.inf
        for i, c in enumerate(self.counts):
            hi = float(self.edges[i]) if i < len(self.edges) else math.inf
            if c:
                out.append((lo, hi, int(c)))
            lo = hi
        return out

    def snapshot(self) -> dict[str, Any]:
        empty = self.count == 0
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": None if empty else self.mean,
            "min": None if empty else self.vmin,
            "max": None if empty else self.vmax,
            "p50": None if empty else self.quantile(0.5),
            "p99": None if empty else self.quantile(0.99),
            "edges": self.edges.tolist(),
            "counts": self.counts.tolist(),
        }


class MetricsRegistry:
    """Named metric instruments, created on first use.

    Re-requesting a name returns the existing instrument; requesting it
    as a different type is an error (names are global within a run).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory) -> Any:
        m = self._metrics.get(name)
        if m is None:
            m = factory()
            self._metrics[name] = m
        elif not isinstance(m, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(m).__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, edges: Iterable[float] | None = None) -> Histogram:
        return self._get(
            name, Histogram, lambda: Histogram(edges or log_bucket_edges())
        )

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> "Counter | Gauge | Histogram":
        return self._metrics[name]

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one JSON-able dict, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def summary(self, *, width: int = 46) -> str:
        """Terminal rendering: scalar lines plus ASCII histograms."""
        from ..units import format_seconds
        from ..viz.ascii_plot import ascii_histogram

        lines: list[str] = ["== metrics =="]
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Counter):
                lines.append(f"{name:<34} {m.value:g}")
            elif isinstance(m, Gauge):
                hi = "-" if m.updates == 0 else f"{m.max:g}"
                lines.append(f"{name:<34} {m.value:g} (max {hi})")
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Histogram) and m.count:
                lines.append("")
                lines.append(
                    ascii_histogram(
                        m.nonempty_buckets(),
                        title=(
                            f"{name}  n={m.count} mean={format_seconds(m.mean)} "
                            f"max={format_seconds(m.vmax)}"
                        ),
                        width=width,
                        fmt=format_seconds,
                    )
                )
        return "\n".join(lines)


class SimMetrics(SimProbe):
    """Probe adapter: fills a :class:`MetricsRegistry` from a DES run.

    Captured series (all names stable, for artifact consumers):

    * ``source.packets`` / ``source.bytes`` — counters;
    * ``stage.<name>.service_s`` — per-stage service-time histogram;
    * ``stage.<name>.jobs`` / ``stage.<name>.bytes`` — counters;
    * ``queue.<name>.bytes`` — occupancy gauge (max = high-water mark);
    * ``job.latency_s`` — end-to-end latency histogram (oldest-byte
      convention, the one the NC delay bound constrains);
    * ``sink.bytes`` — counter.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def queue_level(self, queue: str, t: float, level: float) -> None:
        self.registry.gauge(f"queue.{queue}.bytes").set(level)

    def source_packet(self, t: float, nbytes: float) -> None:
        self.registry.counter("source.packets").inc()
        self.registry.counter("source.bytes").inc(nbytes)

    def job_end(
        self, stage: str, t_start: float, t_end: float, nbytes: float, first: bool
    ) -> None:
        self.registry.histogram(f"stage.{stage}.service_s").observe(t_end - t_start)
        self.registry.counter(f"stage.{stage}.jobs").inc()
        self.registry.counter(f"stage.{stage}.bytes").inc(nbytes)

    def sink_departure(
        self, t: float, nbytes: float, born_first: float, born_last: float
    ) -> None:
        self.registry.histogram("job.latency_s").observe(t - born_first)
        self.registry.counter("sink.bytes").inc(nbytes)

    # convenience passthroughs ------------------------------------------ #

    def snapshot(self) -> dict[str, Any]:
        return self.registry.snapshot()

    def summary(self) -> str:
        return self.registry.summary()

    def stage_service_summary(self) -> dict[str, Mapping[str, Any]]:
        """Compact per-stage service stats (sweep artifact rows)."""
        out: dict[str, Mapping[str, Any]] = {}
        for name in self.registry.names():
            if name.startswith("stage.") and name.endswith(".service_s"):
                m = self.registry[name]
                if isinstance(m, Histogram) and m.count:
                    stage = name[len("stage."):-len(".service_s")]
                    out[stage] = {
                        "count": m.count,
                        "mean_s": m.mean,
                        "max_s": m.vmax,
                        "p99_s": m.quantile(0.99),
                    }
        return out
