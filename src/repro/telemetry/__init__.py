"""Observability for the reproduction: tracing, metrics, conformance.

Three pillars, one probe protocol (:class:`SimProbe`):

* :mod:`repro.telemetry.trace` — a bounded-ring-buffer event tracer
  with Chrome/Perfetto trace-event JSON export (``repro simulate
  --trace out.json``, load at ``ui.perfetto.dev``);
* :mod:`repro.telemetry.metrics` — counters, gauges and fixed-bucket
  histograms of per-stage service times, end-to-end latencies and
  queue occupancy (``repro simulate --metrics``);
* :mod:`repro.telemetry.conformance` — replays DES observations
  against the network-calculus bounds and reports violations
  (``repro conformance {blast,bitw,file}``).

Every DES hook site is guarded by ``if probe is not None``, so
untraced runs pay near-zero cost.
"""

from .probe import MultiProbe, ServiceLog, SimProbe
from .trace import TRACE_SCHEMA_PHASES, Tracer
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SimMetrics,
    log_bucket_edges,
)
from .conformance import (
    CheckResult,
    ConformanceReport,
    Violation,
    check_arrivals,
    check_backlog,
    check_delay,
    check_queues,
    check_stage_service,
    evaluate_conformance,
    run_conformance,
    valid_bounds,
)

__all__ = [
    "SimProbe",
    "MultiProbe",
    "ServiceLog",
    "Tracer",
    "TRACE_SCHEMA_PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SimMetrics",
    "log_bucket_edges",
    "Violation",
    "CheckResult",
    "ConformanceReport",
    "check_delay",
    "check_arrivals",
    "check_backlog",
    "check_queues",
    "check_stage_service",
    "evaluate_conformance",
    "run_conformance",
    "valid_bounds",
]
