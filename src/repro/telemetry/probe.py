"""The observation protocol between the DES engines and telemetry sinks.

A :class:`SimProbe` is a bundle of callbacks the simulation machinery
invokes at interesting moments — kernel event dispatch, queue-level
transitions, job service spans, source emissions, sink departures.
Every hook site guards with ``if probe is not None`` so untraced runs
pay a single pointer comparison and nothing else; the base class
implements every callback as a no-op so sinks override only what they
consume.

The protocol is duck-typed on purpose: :mod:`repro.des` never imports
this module (no layering cycle), it just calls these method names on
whatever object it was handed.  :class:`MultiProbe` fans one hook
stream out to several sinks (e.g. a tracer *and* a metrics registry in
the same run).
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["SimProbe", "MultiProbe", "ServiceLog"]


class SimProbe:
    """No-op base class for simulation observers.

    Time arguments are simulation seconds; byte counts are
    input-referred, matching the rest of the library.
    """

    def kernel_event(self, t: float, event: Any) -> None:
        """One DES kernel event was dispatched (``Environment.step``)."""

    def queue_level(self, queue: str, t: float, level: float) -> None:
        """A queue/store/container changed to ``level`` at time ``t``."""

    def source_packet(self, t: float, nbytes: float) -> None:
        """The workload source admitted ``nbytes`` into the pipeline."""

    def job_start(self, stage: str, t: float, nbytes: float) -> None:
        """Stage ``stage`` initiated a job over ``nbytes`` at ``t``."""

    def job_end(
        self, stage: str, t_start: float, t_end: float, nbytes: float, first: bool
    ) -> None:
        """Stage ``stage`` finished the job started at ``t_start``.

        ``first`` marks the stage's first job, which additionally pays
        the one-time startup (pipeline-fill) latency.
        """

    def sink_departure(
        self, t: float, nbytes: float, born_first: float, born_last: float
    ) -> None:
        """``nbytes`` left the pipeline; birth stamps give the delays."""

    def run_end(self, t: float) -> None:
        """The simulation drained at time ``t``."""


class MultiProbe(SimProbe):
    """Fan one probe stream out to several sinks, in order."""

    def __init__(self, probes: Sequence[SimProbe]) -> None:
        self.probes = list(probes)

    def kernel_event(self, t: float, event: Any) -> None:
        for p in self.probes:
            p.kernel_event(t, event)

    def queue_level(self, queue: str, t: float, level: float) -> None:
        for p in self.probes:
            p.queue_level(queue, t, level)

    def source_packet(self, t: float, nbytes: float) -> None:
        for p in self.probes:
            p.source_packet(t, nbytes)

    def job_start(self, stage: str, t: float, nbytes: float) -> None:
        for p in self.probes:
            p.job_start(stage, t, nbytes)

    def job_end(
        self, stage: str, t_start: float, t_end: float, nbytes: float, first: bool
    ) -> None:
        for p in self.probes:
            p.job_end(stage, t_start, t_end, nbytes, first)

    def sink_departure(
        self, t: float, nbytes: float, born_first: float, born_last: float
    ) -> None:
        for p in self.probes:
            p.sink_departure(t, nbytes, born_first, born_last)

    def run_end(self, t: float) -> None:
        for p in self.probes:
            p.run_end(t)


class ServiceLog(SimProbe):
    """Collects raw per-job service spans for conformance checking.

    ``spans`` holds ``(stage, t_start, t_end, nbytes, first)`` tuples in
    completion order — exactly what
    :func:`repro.telemetry.conformance.check_stage_service` replays
    against the modelled per-job execution-time ranges.
    """

    def __init__(self) -> None:
        self.spans: list[tuple[str, float, float, float, bool]] = []

    def job_end(
        self, stage: str, t_start: float, t_end: float, nbytes: float, first: bool
    ) -> None:
        self.spans.append((stage, t_start, t_end, nbytes, first))
