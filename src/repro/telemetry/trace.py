"""Event tracing with a bounded ring buffer and Chrome trace-event export.

A :class:`Tracer` is a :class:`~repro.telemetry.probe.SimProbe` that
records simulation activity into a fixed-capacity ring buffer
(``collections.deque(maxlen=...)``): tracing a pathologically long run
costs bounded memory and simply evicts the oldest events, with the
eviction count reported in the export's metadata.

The export format is the Chrome/Perfetto trace-event JSON (load the
file at ``ui.perfetto.dev`` or ``chrome://tracing``):

* stage job spans  -> complete events (``ph: "X"``) with one trace
  *thread* per stage;
* queue levels     -> counter events (``ph: "C"``), one track per queue;
* source/sink flow -> instant events (``ph: "i"``) on dedicated threads;
* kernel events    -> instant events (opt-in via ``kernel_events=True``;
  one per ``Environment.step`` is far too hot for routine runs).

Timestamps are simulation microseconds (the format's native unit), so
exports are a pure function of the simulated run: same seed, same
bytes.  :meth:`Tracer.write` serialises with sorted keys and fixed
separators to keep that byte-identity property.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Mapping

from .probe import SimProbe

__all__ = ["Tracer", "TRACE_SCHEMA_PHASES"]

#: Event phases this exporter may emit (the schema tests pin them).
TRACE_SCHEMA_PHASES = ("X", "i", "C", "M")

#: Trace "process" ids: everything lives in one simulated process.
_PID = 0
#: Reserved trace "thread" ids (stages allocate upward from _TID_STAGE0).
_TID_SOURCE = 0
_TID_SINK = 1
_TID_KERNEL = 2
_TID_STAGE0 = 10

#: simulation seconds -> trace microseconds
_US = 1e6


class Tracer(SimProbe):
    """Bounded-ring-buffer simulation tracer with Chrome JSON export.

    Parameters
    ----------
    capacity:
        maximum number of retained events; older events are evicted
        (FIFO) once the buffer is full.
    kernel_events:
        also record one instant event per DES kernel dispatch — full
        engine visibility at a heavy cost; off by default.
    """

    def __init__(self, capacity: int = 1_000_000, *, kernel_events: bool = False) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.kernel_events = bool(kernel_events)
        self.emitted = 0
        self._events: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._stage_tids: dict[str, int] = {}
        self._job_open: dict[str, float] = {}
        self._end_time: float | None = None

    # -- raw emission --------------------------------------------------- #

    def _emit(self, event: dict[str, Any]) -> None:
        self.emitted += 1
        self._events.append(event)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer so far."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def complete(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        tid: int = _TID_KERNEL,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a complete ("X") span; ``ts``/``dur`` in sim seconds."""
        ev: dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts * _US,
            "dur": dur * _US,
            "pid": _PID,
            "tid": tid,
        }
        if args:
            ev["args"] = dict(args)
        self._emit(ev)

    def instant(
        self,
        name: str,
        cat: str,
        ts: float,
        tid: int = _TID_KERNEL,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record an instant ("i") event at sim time ``ts``."""
        ev: dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": ts * _US,
            "pid": _PID,
            "tid": tid,
        }
        if args:
            ev["args"] = dict(args)
        self._emit(ev)

    def counter(self, name: str, ts: float, values: Mapping[str, float]) -> None:
        """Record a counter ("C") sample — one track per ``name``."""
        self._emit(
            {
                "name": name,
                "cat": "queue",
                "ph": "C",
                "ts": ts * _US,
                "pid": _PID,
                "tid": 0,
                "args": dict(values),
            }
        )

    # -- SimProbe implementation ---------------------------------------- #

    def _tid_for(self, stage: str) -> int:
        tid = self._stage_tids.get(stage)
        if tid is None:
            tid = _TID_STAGE0 + len(self._stage_tids)
            self._stage_tids[stage] = tid
        return tid

    def kernel_event(self, t: float, event: Any) -> None:
        if self.kernel_events:
            self.instant(type(event).__name__, "des.kernel", t, _TID_KERNEL)

    def queue_level(self, queue: str, t: float, level: float) -> None:
        self.counter(queue, t, {"bytes": level})

    def source_packet(self, t: float, nbytes: float) -> None:
        self.instant("source", "flow", t, _TID_SOURCE, {"bytes": nbytes})

    def job_start(self, stage: str, t: float, nbytes: float) -> None:
        # spans are emitted whole at job_end; remember the start for
        # consumers that only see job_end (defensive; pipeline_sim
        # always pairs the two)
        self._job_open[stage] = t

    def job_end(
        self, stage: str, t_start: float, t_end: float, nbytes: float, first: bool
    ) -> None:
        self._job_open.pop(stage, None)
        args: dict[str, Any] = {"bytes": nbytes}
        if first:
            args["first_job"] = True
        self.complete("job", f"stage.{stage}", t_start, t_end - t_start,
                      self._tid_for(stage), args)

    def sink_departure(
        self, t: float, nbytes: float, born_first: float, born_last: float
    ) -> None:
        self.instant(
            "departure",
            "flow",
            t,
            _TID_SINK,
            {
                "bytes": nbytes,
                "delay_first": t - born_first,
                "delay_last": t - born_last,
            },
        )

    def run_end(self, t: float) -> None:
        self._end_time = t

    # -- export ---------------------------------------------------------- #

    def to_chrome(self) -> dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Thread-name metadata events are regenerated on every export (so
        they survive ring eviction); ``otherData`` carries the ring
        accounting a consumer needs to judge completeness.
        """
        meta: list[dict[str, Any]] = [
            _thread_name(_TID_SOURCE, "source"),
            _thread_name(_TID_SINK, "sink"),
            _thread_name(_TID_KERNEL, "des-kernel"),
        ]
        for stage, tid in sorted(self._stage_tids.items(), key=lambda kv: kv[1]):
            meta.append(_thread_name(tid, f"stage:{stage}"))
        return {
            "traceEvents": meta + list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "capacity": self.capacity,
                "emitted": self.emitted,
                "retained": len(self._events),
                "dropped": self.dropped,
                "end_time_us": None if self._end_time is None else self._end_time * _US,
            },
        }

    def write(self, path: "str | Path") -> Path:
        """Serialise to ``path`` deterministically (and atomically)."""
        from .._fsutil import atomic_write_text

        return atomic_write_text(
            path,
            json.dumps(self.to_chrome(), sort_keys=True, separators=(",", ":"))
            + "\n",
        )


def _thread_name(tid: int, name: str) -> dict[str, Any]:
    return {
        "name": "thread_name",
        "cat": "__metadata",
        "ph": "M",
        "ts": 0.0,
        "pid": _PID,
        "tid": tid,
        "args": {"name": name},
    }
