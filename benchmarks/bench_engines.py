"""Micro-benchmarks of the two engines everything else is built on.

* the DES kernel: event throughput of a ping-pong process pair and of a
  producer/consumer store pattern;
* the min-plus algebra: convolution/deconvolution of representative
  curve sizes, and the full BLAST tandem concatenation.

These guard against performance regressions in the substrates (the
guides' rule: measure before optimising).

Run as a script to emit machine-readable timings —

    PYTHONPATH=src python benchmarks/bench_engines.py

writes ``BENCH_engines.json`` next to this file (per-workload best/mean
seconds plus environment metadata), the perf baseline future PRs diff
against.  Under pytest, the same workloads run through pytest-benchmark
as before.
"""

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.des import Environment, Store
from repro.nc import (
    Curve,
    convolve,
    convolve_many,
    deconvolve,
    leaky_bucket,
    rate_latency,
    staircase,
)


def _ping_pong(n_events: int) -> float:
    env = Environment()

    def proc(env):
        for _ in range(n_events):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    return env.now


def test_des_timeout_throughput(benchmark):
    result = benchmark(_ping_pong, 2000)
    assert result == 2000.0


def _producer_consumer(n_items: int) -> int:
    env = Environment()
    store = Store(env, capacity=16)
    got = []

    def producer(env):
        for i in range(n_items):
            yield store.put(i)

    def consumer(env):
        for _ in range(n_items):
            got.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return len(got)


def test_des_store_throughput(benchmark):
    assert benchmark(_producer_consumer, 1000) == 1000


def _random_pwl(seed: int, n: int = 12) -> Curve:
    rng = np.random.default_rng(seed)
    bx = np.concatenate(([0.0], np.cumsum(rng.uniform(0.1, 1.0, n - 1))))
    sl = rng.uniform(0.0, 5.0, n)
    by, sy = [0.0], [float(rng.uniform(0, 1))]
    for i in range(1, n):
        left = sy[-1] + sl[i - 1] * (bx[i] - bx[i - 1])
        by.append(left)
        sy.append(left + float(rng.uniform(0, 0.5)))
    return Curve(bx, by, sy, sl)


def test_minplus_convolution_speed(benchmark):
    f, g = _random_pwl(1), _random_pwl(2)
    out = benchmark(convolve, f, g)
    assert out.is_nondecreasing()


def test_minplus_deconvolution_speed(benchmark):
    f = leaky_bucket(10.0, 3.0).minimum(leaky_bucket(4.0, 9.0))
    g = _random_pwl(3)
    if f.final_slope > g.final_slope:
        g = g + Curve.affine(f.final_slope, 0.0)
    out = benchmark(deconvolve, f, g)
    assert out(0.0) >= 0.0


def test_blast_tandem_concatenation_speed(benchmark):
    from repro.apps.blast import blast_pipeline
    from repro.streaming import build_model

    model = build_model(blast_pipeline())
    curves = [model.node_service_curve(i) for i in range(len(model.normalized))]
    out = benchmark(convolve_many, curves)
    assert out.final_slope > 0


def test_staircase_convolution_speed(benchmark):
    st = staircase(1.0, 0.5, n_steps=32)
    beta = rate_latency(3.0, 0.25)
    out = benchmark(convolve, st, beta)
    assert out.is_nondecreasing()


# --------------------------------------------------------------------- #
# script mode: machine-readable timings
# --------------------------------------------------------------------- #


def _workloads():
    """The same engine workloads the pytest benchmarks time, as thunks."""
    f, g = _random_pwl(1), _random_pwl(2)
    dec_f = leaky_bucket(10.0, 3.0).minimum(leaky_bucket(4.0, 9.0))
    dec_g = _random_pwl(3)
    if dec_f.final_slope > dec_g.final_slope:
        dec_g = dec_g + Curve.affine(dec_f.final_slope, 0.0)
    st = staircase(1.0, 0.5, n_steps=32)
    beta = rate_latency(3.0, 0.25)

    from repro.apps.blast import blast_pipeline
    from repro.streaming import build_model

    model = build_model(blast_pipeline())
    curves = [model.node_service_curve(i) for i in range(len(model.normalized))]

    return {
        "des_timeout_throughput": lambda: _ping_pong(2000),
        "des_store_throughput": lambda: _producer_consumer(1000),
        "minplus_convolution": lambda: convolve(f, g),
        "minplus_deconvolution": lambda: deconvolve(dec_f, dec_g),
        "blast_tandem_concatenation": lambda: convolve_many(curves),
        "staircase_convolution": lambda: convolve(st, beta),
    }


def _time(thunk, repeat: int = 5) -> dict:
    """Best/mean wall seconds over ``repeat`` runs (after one warmup)."""
    thunk()
    samples = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        samples.append(time.perf_counter() - t0)
    return {
        "min_s": min(samples),
        "mean_s": sum(samples) / len(samples),
        "runs": repeat,
    }


def main() -> None:
    from repro import __version__

    record = {
        "bench": "engines",
        "version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "timings": {name: _time(thunk) for name, thunk in _workloads().items()},
    }
    out = Path(__file__).parent / "BENCH_engines.json"
    out.write_text(json.dumps(record, indent=1) + "\n")
    print(json.dumps(record, indent=1))
    print(f"\n[written to {out}]")


if __name__ == "__main__":
    main()
