"""Regenerates Figure 4: BLAST model curves vs simulated output.

The defining property of the figure: the simulated cumulative-output
stair-step stays *between* the service curve ``beta(t)`` (lower bound)
and the arrival curve ``alpha(t)`` (upper bound), with ``alpha*`` a
loose upper bound above the simulation.
"""

import numpy as np

from repro.units import MiB
from repro.viz import figure4


def test_figure4(benchmark):
    fig = benchmark(figure4, workload=128 * MiB)
    print()
    print(fig.ascii())

    sim_t, sim_y = fig.series["simulation"]
    alpha_t, alpha_y = fig.series["alpha(t)"]
    beta_t, beta_y = fig.series["beta'(t)"]

    # interpolate the model curves onto the simulation's time points
    alpha_at_sim = np.interp(sim_t, alpha_t, alpha_y)
    beta_at_sim = np.interp(sim_t, beta_t, beta_y)

    # simulation between the bounds (small interpolation slack)
    assert np.all(sim_y <= alpha_at_sim * 1.001 + 0.1)
    assert np.all(sim_y >= beta_at_sim * 0.999 - 0.1)

    if "alpha*(t)" in fig.series:
        star_t, star_y = fig.series["alpha*(t)"]
        star_at_sim = np.interp(sim_t, star_t, star_y)
        assert np.all(sim_y <= star_at_sim * 1.001 + 0.1)

    # annotations match the paper's ballpark
    assert 40.0 <= fig.annotations["delay_bound_ms"] <= 50.0
    assert 19.0 <= fig.annotations["backlog_bound_MiB"] <= 22.0
    assert 340.0 <= fig.annotations["sim_throughput_MiB_s"] <= 360.0
