"""Sweep-engine benchmark: parallel speedup and cache effectiveness.

Runs the same >= 24-point BLAST design-space grid three ways —

* serial (``jobs=1``),
* parallel (``jobs=min(4, cpu_count)``),
* cached rerun (warm content-addressed cache) —

asserts the three produce identical results (modulo timings), and
writes machine-readable timings to ``BENCH_sweep.json`` so the perf
trajectory across PRs has a baseline.

Run as a script for the full benchmark (DES per point, ~seconds):

    PYTHONPATH=src python benchmarks/bench_sweep.py

Under pytest, a scaled-down grid keeps the invariants covered without
the wall-clock cost.  The >= 2x parallel-speedup assertion only arms on
machines with >= 4 cores (single-core CI boxes can't exhibit it).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.apps.blast import blast_pipeline
from repro.sweep import Axis, ResultCache, SweepSpec, run_sweep
from repro.units import MiB


def _grid_spec(workload_mib: float, simulate: bool) -> SweepSpec:
    """A 24-point grid: GPU-filter scaling x network scaling x source pacing."""
    return SweepSpec.from_pipeline(
        blast_pipeline(),
        [
            Axis("scale:ungapped_ext", (1.0, 1.25, 1.5, 2.0)),
            Axis("scale:network", (0.5, 1.0, 2.0)),
            Axis("source_rate_scale", (0.75, 1.0)),
        ],
        simulate=simulate,
        workload=workload_mib * MiB,
    )


def run_benchmark(workload_mib: float = 256.0, jobs: int | None = None) -> dict:
    """Execute the three-way benchmark and return the timing record."""
    jobs = jobs if jobs is not None else min(4, os.cpu_count() or 1)
    spec = _grid_spec(workload_mib, simulate=True)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "cache")

        t0 = time.perf_counter()
        serial = run_sweep(spec, jobs=1)
        t_serial = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel = run_sweep(spec, jobs=jobs, cache=cache)
        t_parallel = time.perf_counter() - t0

        t0 = time.perf_counter()
        cached = run_sweep(spec, jobs=jobs, cache=cache)
        t_cached = time.perf_counter() - t0

    assert serial.comparable() == parallel.comparable(), "serial != parallel"
    assert serial.comparable() == cached.comparable(), "serial != cached"
    assert not serial.errors
    assert cached.cache_hits == spec.n_points, "warm run must skip all recomputation"
    assert cached.cache_misses == 0

    return {
        "bench": "sweep",
        "version": __version__,
        "n_points": spec.n_points,
        "workload_mib": workload_mib,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "cached_s": t_cached,
        "speedup_parallel": t_serial / t_parallel if t_parallel > 0 else None,
        "speedup_cached": t_serial / t_cached if t_cached > 0 else None,
        "parallel_mode": parallel.mode,
    }


def test_sweep_modes_agree():
    """Tier-2 guard: the three execution modes agree on a small grid."""
    record = run_benchmark(workload_mib=4.0, jobs=2)
    assert record["n_points"] >= 24
    assert record["cached_s"] < record["serial_s"], "warm cache must beat recompute"


def main() -> None:
    record = run_benchmark()
    out = Path(__file__).parent / "BENCH_sweep.json"
    out.write_text(json.dumps(record, indent=1) + "\n")
    print(json.dumps(record, indent=1))
    print(f"\n[written to {out}]")
    if (os.cpu_count() or 1) >= 4:
        assert record["speedup_parallel"] >= 2.0, (
            f"expected >= 2x parallel speedup on {os.cpu_count()} cores, "
            f"got {record['speedup_parallel']:.2f}x"
        )
        print(f"parallel speedup {record['speedup_parallel']:.2f}x (>= 2x OK)")
    else:
        print(
            f"parallel speedup {record['speedup_parallel']:.2f}x "
            f"({os.cpu_count()} core(s): >= 2x assertion not armed)"
        )


if __name__ == "__main__":
    main()
