"""Regenerates Table 3: bump-in-the-wire throughput.

Paper values: NC upper 313 MiB/s, NC lower 59 MiB/s, DES 61 MiB/s,
queueing 151 MiB/s.  Our lower bound is 56 MiB/s (the encrypt stage's
Table-2 worst rate; the paper's 59 is internally inconsistent with its
own Table 2 — see DESIGN.md §5).  Also regenerates the §5 observations.
"""

from repro.reproduction import bitw_observation_rows, format_rows, table3_rows
from repro.units import MiB

from conftest import assert_rows_within


def test_table3_throughput(benchmark):
    rows = benchmark(table3_rows, workload=2 * MiB)
    print()
    print(format_rows("Table 3 — bump-in-the-wire throughput", rows))
    assert_rows_within(
        rows,
        {
            "NC upper bound": 0.01,
            "NC lower bound": 0.06,  # 56 vs the paper's 59
            "DES model": 0.07,
            "Queueing prediction": 0.02,
        },
    )


def test_bitw_observations(benchmark):
    rows = benchmark(bitw_observation_rows, workload=2 * MiB)
    print()
    print(format_rows("§5 observations — bump-in-the-wire", rows))
    assert_rows_within(
        rows,
        {
            "delay bound": 0.01,
            "sim longest delay": 0.10,
            "sim shortest delay": 0.20,
            "backlog bound": 0.01,
            "sim max backlog": 0.30,
        },
    )
