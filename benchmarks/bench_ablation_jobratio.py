"""Ablation: the job-ratio aggregation-latency recursion (§3).

Three latency models for the same pipeline:

* ``convolved``   — plain min-plus concatenation (no aggregation);
* ``paper``       — the paper's recursion (collection only when a job
                    exceeds the upstream burst);
* ``conservative``— collection charged at every aggregating node
                    (required for smooth arrivals; our extension).

The bench quantifies how much end-to-end latency each choice attributes
and demonstrates the ordering ``convolved <= paper <= conservative``.
"""

import pytest

from repro.streaming import Pipeline, Source, Stage, build_model, simulate
from repro.units import KiB, MiB


def _pipeline(burst: float) -> Pipeline:
    return Pipeline(
        "jobratio-ablation",
        Source(rate=100 * MiB, burst=burst, packet_bytes=64 * KiB),
        [
            Stage("ingest", avg_rate=300 * MiB, min_rate=250 * MiB, latency=1e-3,
                  job_bytes=1 * MiB),
            Stage("batch", avg_rate=400 * MiB, min_rate=380 * MiB, latency=0.5e-3,
                  job_bytes=16 * MiB),  # big aggregation
            Stage("process", avg_rate=200 * MiB, min_rate=150 * MiB, latency=2e-3,
                  job_bytes=2 * MiB),
        ],
    )


def _latencies(pipe):
    paper = build_model(pipe, packetized=False)
    conservative = build_model(pipe, packetized=False, conservative_aggregation=True)
    # recover the plain-convolution latency from the curve's zero-run
    conv = paper.beta_convolved
    t_conv = max(
        (float(x) for x, y in zip(conv.bx, conv.by) if y == 0.0), default=0.0
    )
    return t_conv, paper.total_latency, conservative.total_latency


def test_latency_model_ordering(benchmark):
    pipe = _pipeline(burst=32 * MiB)  # burst covers the 16 MiB batch
    t_conv, t_paper, t_cons = benchmark(_latencies, pipe)
    print(
        f"\nconvolved {t_conv * 1e3:.2f} ms <= paper {t_paper * 1e3:.2f} ms "
        f"<= conservative {t_cons * 1e3:.2f} ms"
    )
    assert t_conv <= t_paper + 1e-12
    assert t_paper <= t_cons + 1e-12
    # burst covers every job: paper model sees pure dispatch latency
    assert t_paper == pytest.approx(1e-3 + 0.5e-3 + 2e-3)
    # conservative model pays 16 MiB + 1 MiB + (2MiB covered by upstream
    # emission? no: batch emits 16 MiB >= 2 MiB, so process collects free)
    assert t_cons == pytest.approx(t_paper + (1 * MiB + 16 * MiB) / (100 * MiB))


def test_small_burst_activates_collection(benchmark):
    pipe = _pipeline(burst=0.0)
    t_conv, t_paper, t_cons = benchmark(_latencies, pipe)
    # without a covering burst, the paper's recursion and the
    # conservative one agree
    assert t_paper == pytest.approx(t_cons)
    assert t_paper > t_conv


def test_conservative_bound_holds_for_smooth_arrivals(benchmark):
    """The ablation's point: only the conservative model bounds a
    smooth-arrival simulation of an aggregating pipeline."""
    pipe = _pipeline(burst=32 * MiB)

    def run():
        sim = simulate(pipe, workload=192 * MiB, seed=3)
        vd = sim.observed_virtual_delays()
        paper = build_model(pipe, packetized=False)
        cons = build_model(pipe, packetized=False, conservative_aggregation=True)
        from repro.nc import horizontal_deviation

        return (
            vd.max,
            horizontal_deviation(paper.alpha, paper.beta_system),
            horizontal_deviation(cons.alpha, cons.beta_system),
        )

    observed, d_paper, d_cons = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nobserved {observed * 1e3:.1f} ms | paper bound {d_paper * 1e3:.1f} ms | "
        f"conservative bound {d_cons * 1e3:.1f} ms"
    )
    assert observed <= d_cons
