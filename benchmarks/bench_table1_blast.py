"""Regenerates Table 1: BLAST streaming-application throughput.

Paper values: NC upper 704 MiB/s, NC lower 350 MiB/s, DES 353 MiB/s,
queueing 500 MiB/s (measured 355 MiB/s from [12] is carried as an
external constant).  Also regenerates the §4.2 delay/backlog
observations.
"""

from repro.reproduction import (
    blast_observation_rows,
    format_rows,
    table1_rows,
)
from repro.units import MiB

from conftest import assert_rows_within


def test_table1_throughput(benchmark):
    rows = benchmark(table1_rows, workload=128 * MiB)
    print()
    print(format_rows("Table 1 — BLAST throughput", rows))
    assert_rows_within(
        rows,
        {
            "NC upper bound": 0.01,
            "NC lower bound": 0.01,
            "DES model": 0.02,
            "Queueing prediction": 0.01,
            "Measured": 1.0,  # external constant, NaN row (skipped)
        },
    )


def test_blast_observations(benchmark):
    rows = benchmark(blast_observation_rows, workload=128 * MiB)
    print()
    print(format_rows("§4.2 observations — BLAST", rows))
    assert_rows_within(
        rows,
        {
            "delay bound": 0.01,
            "sim longest delay": 0.10,
            "sim shortest delay": 0.10,
            "backlog bound": 0.01,
            # the paper's own sim-backlog figure is internally inconsistent
            # (printed as KiB against a MiB bound); ours only needs to sit
            # below the bound, checked in tests/apps
            "sim max backlog": 0.30,
        },
    )
