"""Scenario-catalog benchmark: cold vs. warm (cache-hit) catalog runs.

Runs the full built-in catalog twice against one content-addressed
cache directory — cold (every scenario evaluated: NC analysis + DES +
conformance + judging) and warm (every scenario a cache hit; only the
judging recomputes) — and writes the timings to
``BENCH_scenarios.json``.  The warm run must be at least 2x faster
than the cold run: the point of routing scenarios through the sweep
engine's content-addressed cache is that re-running the catalog (CI,
report re-renders, local iteration) costs close to nothing.

Run as a script for the full catalog:

    PYTHONPATH=src python benchmarks/bench_scenarios.py

Under pytest, the quick subset keeps the invariants covered cheaply.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.scenarios import catalog, quick_catalog, run_catalog
from repro.sweep import ResultCache


def run_benchmark(specs=None, jobs: int | None = None) -> dict:
    """Cold/warm catalog timing record (also asserts correctness)."""
    specs = list(specs) if specs is not None else catalog()
    jobs = jobs if jobs is not None else min(4, os.cpu_count() or 1)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "cache")

        t0 = time.perf_counter()
        cold = run_catalog(specs, jobs=jobs, cache=cache)
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = run_catalog(specs, jobs=jobs, cache=cache)
        t_warm = time.perf_counter() - t0

    assert cold.ok, f"cold catalog run failed:\n{cold.summary()}"
    assert warm.ok, f"warm catalog run failed:\n{warm.summary()}"
    assert warm.cache_hits == len(specs), "warm run must be pure cache reads"
    assert warm.cache_misses == 0
    assert [r.to_dict() for r in warm.results] == [
        {**r.to_dict(), "cached": True, "elapsed": w.elapsed}
        for r, w in zip(cold.results, warm.results)
    ], "cold and warm runs must judge identically"

    return {
        "bench": "scenarios",
        "version": __version__,
        "n_scenarios": len(specs),
        "n_checks": cold.n_checks,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "cold_s": t_cold,
        "warm_s": t_warm,
        "cold_scenarios_per_s": len(specs) / t_cold if t_cold > 0 else None,
        "warm_scenarios_per_s": len(specs) / t_warm if t_warm > 0 else None,
        "speedup_warm": t_cold / t_warm if t_warm > 0 else None,
        "cold_mode": cold.mode,
    }


def test_catalog_cold_warm_agree():
    """Tier-2 guard: warm == cold on the quick subset, and warm is a
    pure cache read."""
    record = run_benchmark(specs=quick_catalog(per_family=2), jobs=2)
    assert record["n_scenarios"] == 6
    assert record["warm_s"] < record["cold_s"], "warm cache must beat recompute"


def main() -> None:
    record = run_benchmark()
    out = Path(__file__).parent / "BENCH_scenarios.json"
    out.write_text(json.dumps(record, indent=1) + "\n")
    print(json.dumps(record, indent=1))
    print(f"\n[written to {out}]")
    assert record["speedup_warm"] >= 2.0, (
        f"expected warm catalog >= 2x faster than cold, "
        f"got {record['speedup_warm']:.2f}x"
    )
    print(f"warm speedup {record['speedup_warm']:.2f}x (>= 2x OK)")


if __name__ == "__main__":
    main()
