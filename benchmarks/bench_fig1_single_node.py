"""Regenerates Figure 1: the didactic single-node curve plot.

Leaky-bucket arrival, rate-latency (minimum) and constant-rate
(maximum) service curves, and the derived output bound ``alpha*``, with
the backlog/virtual-delay annotations.  Invariants checked: the closed
forms from §3 (``d = T + b/R_beta``, ``x = b + R_alpha*T``) and the
figure's geometric relations.
"""

import numpy as np
import pytest

from repro.viz import figure1


def test_figure1(benchmark):
    fig = benchmark(figure1)
    print()
    print(fig.ascii())

    r_a, b, r_b, t_lat = 100.0, 8.0, 150.0, 0.05
    assert fig.annotations["virtual_delay_d"] == pytest.approx(t_lat + b / r_b)
    assert fig.annotations["backlog_x"] == pytest.approx(b + r_a * t_lat)

    alpha_x, alpha_y = fig.series["alpha"]
    beta_x, beta_y = fig.series["beta"]
    gamma_y = fig.series["gamma"][1]
    star_y = fig.series["alpha*"][1]
    # geometric relations of Fig. 1: beta below alpha early (backlog
    # opens), gamma above beta everywhere, alpha* above alpha (it is an
    # envelope of the departed flow, offset by the served backlog)
    assert np.all(gamma_y >= beta_y - 1e-9)
    assert np.all(star_y + 1e-9 >= alpha_y - fig.annotations["backlog_x"])
    # the vertical deviation seen in the sampled curves matches x
    assert np.max(alpha_y - beta_y) == pytest.approx(fig.annotations["backlog_x"], rel=0.02)
