"""Curve-algebra kernel benchmark: cold vs. warm op timings + end-to-end sweep.

Times the three hot NC operators (convolve, deconvolve, pseudo-inverse)
over a repertoire of packetized/affine curve pairs in three regimes —

* ``baseline``  — kernel disabled (no interning, no memo),
* ``cold``      — kernel enabled, empty memo (every call misses),
* ``warm``      — kernel enabled, second pass (every call hits) —

and then runs the same ``upgrade_grid`` what-if sweep end-to-end with
the kernel disabled vs. enabled+warm, asserting the two produce
identical results and recording the speedup and memo hit rate in
``BENCH_nc_ops.json``.

Run as a script for the full benchmark:

    PYTHONPATH=src python benchmarks/bench_nc_ops.py            # full
    PYTHONPATH=src python benchmarks/bench_nc_ops.py --quick    # CI smoke

The script exits non-zero if the warm-path speedup regresses below the
floor (1.5x full, 1.2x quick) — the CI kernel-bench step relies on that.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import __version__
from repro.apps.blast import blast_pipeline
from repro.nc import (
    convolve,
    deconvolve,
    kernel_disabled,
    leaky_bucket,
    lower_pseudo_inverse,
    memo_stats,
    rate_latency,
    reset_kernel,
    token_bucket_stair,
)
from repro.streaming import upgrade_grid
from repro.units import MiB


def _op_cases(n: int):
    """``n`` distinct (alpha, beta) pairs that dodge the trivial fast paths.

    Packetized token-bucket arrivals against rate-latency service keep
    the generic envelope algorithm honest (O(pieces^2) work per op).
    """
    cases = []
    for i in range(1, n + 1):
        alpha = token_bucket_stair(100.0 * i, 64.0, 8.0 + i, n_steps=48)
        beta = rate_latency(150.0 * i, 0.01 + 0.001 * i)
        cases.append((alpha, beta))
    return cases


def _time_ops(cases) -> float:
    t0 = time.perf_counter()
    for alpha, beta in cases:
        convolve(alpha, beta)
        deconvolve(alpha, beta)
        lower_pseudo_inverse(beta)
    return time.perf_counter() - t0


def bench_micro_ops(n_cases: int) -> dict:
    """Cold/warm/baseline timings for convolve + deconvolve + pseudoinverse."""
    cases = _op_cases(n_cases)
    with kernel_disabled():
        t_baseline = _time_ops(cases)
    reset_kernel()
    t_cold = _time_ops(cases)
    t_warm = _time_ops(cases)
    stats = memo_stats()
    return {
        "n_cases": n_cases,
        "ops_per_pass": 3 * n_cases,
        "baseline_s": t_baseline,
        "cold_s": t_cold,
        "warm_s": t_warm,
        "speedup_warm_vs_baseline": t_baseline / t_warm if t_warm > 0 else None,
        "memo_hit_rate": stats["hit_rate"],
        "fast_path_hits": stats["fast_path_hits"],
    }


def _run_grid(factors) -> "tuple[float, object]":
    t0 = time.perf_counter()
    result = upgrade_grid(
        blast_pipeline(),
        stages=["ungapped_ext", "network"],
        factors=factors,
        jobs=1,
        workload=256 * MiB,
    )
    return time.perf_counter() - t0, result


def bench_upgrade_grid(factors) -> dict:
    """End-to-end what-if sweep: kernel-disabled vs. enabled-and-warm.

    ``jobs=1`` keeps every point in-process so all points share one
    kernel memo — the deployment shape of a sweep worker.
    """
    with kernel_disabled():
        t_off, off = _run_grid(factors)
    reset_kernel()
    t_cold, cold = _run_grid(factors)
    t_warm, warm = _run_grid(factors)
    stats = memo_stats()

    assert off.comparable() == cold.comparable(), (
        "analysis outputs must be byte-identical with the kernel on vs. off"
    )
    assert off.comparable() == warm.comparable(), (
        "warm kernel runs must not change analysis outputs"
    )
    assert not off.errors

    return {
        "n_points": off.n_points,
        "factors": list(factors),
        "kernel_off_s": t_off,
        "kernel_cold_s": t_cold,
        "kernel_warm_s": t_warm,
        "speedup_warm_vs_off": t_off / t_warm if t_warm > 0 else None,
        "speedup_cold_vs_off": t_off / t_cold if t_cold > 0 else None,
        "memo_hit_rate": stats["hit_rate"],
        "memo_size": stats["size"],
        "memo_evictions": stats["evictions"],
    }


def run_benchmark(quick: bool = False) -> dict:
    n_cases = 8 if quick else 24
    factors = (1.0, 1.5) if quick else (1.0, 1.25, 1.5, 2.0)
    record = {
        "bench": "nc_ops",
        "version": __version__,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "micro": bench_micro_ops(n_cases),
        "upgrade_grid": bench_upgrade_grid(factors),
    }
    return record


def test_kernel_identity_and_hit_rate():
    """Tier-2 guard: on/off identity holds and the warm grid mostly hits.

    Deliberately asserts no wall-clock ratios — timing thresholds live in
    ``main`` where the CI bench step can retry/inspect them.
    """
    record = run_benchmark(quick=True)
    grid = record["upgrade_grid"]
    assert grid["memo_hit_rate"] is not None and grid["memo_hit_rate"] > 0.3
    assert grid["memo_size"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail below this warm upgrade_grid speedup (default 1.5, quick 1.2)",
    )
    args = parser.parse_args()

    record = run_benchmark(quick=args.quick)
    out = Path(__file__).parent / "BENCH_nc_ops.json"
    out.write_text(json.dumps(record, indent=1) + "\n")
    print(json.dumps(record, indent=1))
    print(f"\n[written to {out}]")

    floor = args.min_speedup if args.min_speedup is not None else (1.2 if args.quick else 1.5)
    speedup = record["upgrade_grid"]["speedup_warm_vs_off"]
    assert speedup is not None and speedup >= floor, (
        f"warm-kernel upgrade_grid speedup {speedup:.2f}x regressed below "
        f"the {floor:.1f}x floor"
    )
    print(f"warm upgrade_grid speedup {speedup:.2f}x (>= {floor:.1f}x OK)")


if __name__ == "__main__":
    main()
