"""Curve-algebra kernel benchmark: cold vs. warm op timings + end-to-end sweep.

Times the three hot NC operators (convolve, deconvolve, pseudo-inverse)
over a repertoire of packetized/affine curve pairs in three regimes —

* ``baseline``  — kernel disabled (no interning, no memo),
* ``cold``      — kernel enabled, empty memo (every call misses),
* ``warm``      — kernel enabled, second pass (every call hits) —

and then runs the same ``upgrade_grid`` what-if sweep end-to-end with
the kernel disabled vs. enabled+warm, asserting the two produce
identical results and recording the speedup and memo hit rate in
``BENCH_nc_ops.json``.

The **cold backend** section times the generic (memo-disabled) path of
the envelope-bound operators — the cost every memo miss pays — on the
``upgrade_grid`` points at *packet granularity*: per grid point it
builds the staircase arrival envelope, caps it at the sweep workload
(the workload-capped output-envelope path ``analyze()`` takes for the
paper's unstable apps), and computes
``(alpha (*) gamma) (/) beta`` — pitting the vectorized array backend
against the object backend on identical inputs and asserting the
results are byte-identical.  The deviation bounds are deliberately
excluded from this timing: their generics are level-space sweeps that
never touch the envelope, so they are backend-independent by
construction.

Run as a script for the full benchmark:

    PYTHONPATH=src python benchmarks/bench_nc_ops.py            # full
    PYTHONPATH=src python benchmarks/bench_nc_ops.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_nc_ops.py --cold     # cold section only

The script exits non-zero if the warm-path speedup regresses below the
floor (1.5x full, 1.2x quick), or the cold array-vs-object speedup
below its floor (5x full, 3x quick) — the CI kernel-bench steps rely
on that.  ``--cold`` reuses an existing ``BENCH_nc_ops.json``, updating
only the ``cold_backend`` key.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import __version__
from repro.apps.blast import blast_pipeline
from repro.nc import (
    Curve,
    backend_override,
    convolve,
    deconvolve,
    digest_of,
    kernel_disabled,
    leaky_bucket,
    lower_pseudo_inverse,
    memo_stats,
    rate_latency,
    reset_kernel,
    token_bucket_stair,
)
from repro.streaming import build_model, upgrade_grid
from repro.sweep import Axis, SweepSpec
from repro.units import MiB


def _op_cases(n: int):
    """``n`` distinct (alpha, beta) pairs that dodge the trivial fast paths.

    Packetized token-bucket arrivals against rate-latency service keep
    the generic envelope algorithm honest (O(pieces^2) work per op).
    """
    cases = []
    for i in range(1, n + 1):
        alpha = token_bucket_stair(100.0 * i, 64.0, 8.0 + i, n_steps=48)
        beta = rate_latency(150.0 * i, 0.01 + 0.001 * i)
        cases.append((alpha, beta))
    return cases


def _time_ops(cases) -> float:
    t0 = time.perf_counter()
    for alpha, beta in cases:
        convolve(alpha, beta)
        deconvolve(alpha, beta)
        lower_pseudo_inverse(beta)
    return time.perf_counter() - t0


def bench_micro_ops(n_cases: int) -> dict:
    """Cold/warm/baseline timings for convolve + deconvolve + pseudoinverse."""
    cases = _op_cases(n_cases)
    with kernel_disabled():
        t_baseline = _time_ops(cases)
    reset_kernel()
    t_cold = _time_ops(cases)
    t_warm = _time_ops(cases)
    stats = memo_stats()
    return {
        "n_cases": n_cases,
        "ops_per_pass": 3 * n_cases,
        "baseline_s": t_baseline,
        "cold_s": t_cold,
        "warm_s": t_warm,
        "speedup_warm_vs_baseline": t_baseline / t_warm if t_warm > 0 else None,
        "memo_hit_rate": stats["hit_rate"],
        "fast_path_hits": stats["fast_path_hits"],
    }


def _run_grid(factors) -> "tuple[float, object]":
    t0 = time.perf_counter()
    result = upgrade_grid(
        blast_pipeline(),
        stages=["ungapped_ext", "network"],
        factors=factors,
        jobs=1,
        workload=256 * MiB,
    )
    return time.perf_counter() - t0, result


def bench_upgrade_grid(factors) -> dict:
    """End-to-end what-if sweep: kernel-disabled vs. enabled-and-warm.

    ``jobs=1`` keeps every point in-process so all points share one
    kernel memo — the deployment shape of a sweep worker.
    """
    with kernel_disabled():
        t_off, off = _run_grid(factors)
    reset_kernel()
    t_cold, cold = _run_grid(factors)
    t_warm, warm = _run_grid(factors)
    stats = memo_stats()

    assert off.comparable() == cold.comparable(), (
        "analysis outputs must be byte-identical with the kernel on vs. off"
    )
    assert off.comparable() == warm.comparable(), (
        "warm kernel runs must not change analysis outputs"
    )
    assert not off.errors

    return {
        "n_points": off.n_points,
        "factors": list(factors),
        "kernel_off_s": t_off,
        "kernel_cold_s": t_cold,
        "kernel_warm_s": t_warm,
        "speedup_warm_vs_off": t_off / t_warm if t_warm > 0 else None,
        "speedup_cold_vs_off": t_off / t_cold if t_cold > 0 else None,
        "memo_hit_rate": stats["hit_rate"],
        "memo_size": stats["size"],
        "memo_evictions": stats["evictions"],
    }


def _stair_grid_params(factors):
    """Per-point model parameters of the blast upgrade grid.

    The same grid ``bench_upgrade_grid`` sweeps, but captured as raw
    curve ingredients so the cold section can rebuild the packetized
    arrival stair inside the timed region (its construction is itself
    an envelope-bound ``minimum``).
    """
    spec = SweepSpec.from_pipeline(
        blast_pipeline(),
        [Axis("scale:ungapped_ext", factors), Axis("scale:network", factors)],
    )
    params = []
    for point in spec.points():
        applied = spec.apply_point(point)
        model = build_model(applied.pipeline, packetized=True)
        params.append(
            (
                applied.pipeline.source.rate,
                model.effective_burst,
                applied.pipeline.source.packet_bytes,
                model.beta_system,
                model.gamma_system,
            )
        )
    return params


def _run_cold_points(params, n_steps: int, workload: float) -> list:
    cap = Curve.constant(workload)
    out = []
    for rate, burst, packet, beta, gamma in params:
        alpha = token_bucket_stair(rate, burst, packet, n_steps=n_steps)
        capped = alpha.minimum(cap)
        out.append(deconvolve(convolve(capped, gamma), beta))
    return out


def bench_cold_backend(factors, n_steps: int, repeats: int = 3) -> dict:
    """Array vs. object backend on the memo-disabled upgrade-grid path.

    Per grid point: stair construction (``minimum``), workload cap
    (``minimum``), ``convolve``, ``deconvolve`` — every envelope-bound
    generic, nothing backend-independent.  Byte-identity of the per
    point results across backends is asserted, both cold
    (kernel-disabled) and warm (kernel-on digests).
    """
    params = _stair_grid_params(factors)
    workload = 256 * MiB
    times = {}
    outputs = {}
    for be in ("object", "array"):
        with backend_override(be), kernel_disabled():
            _run_cold_points(params, n_steps, workload)  # warm numpy/imports
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                out = _run_cold_points(params, n_steps, workload)
                best = min(best, time.perf_counter() - t0)
            times[be] = best
            outputs[be] = out
    import numpy as np

    for a, b in zip(outputs["object"], outputs["array"]):
        assert (
            np.array_equal(a.bx, b.bx)
            and np.array_equal(a.by, b.by)
            and np.array_equal(a.sy, b.sy)
            and np.array_equal(a.sl, b.sl)
        ), "cold-path results must be byte-identical across backends"

    # warm kernel-on identity: same digests from either backend
    warm_digests = {}
    for be in ("object", "array"):
        reset_kernel()
        with backend_override(be):
            warm_digests[be] = [
                digest_of(c) for c in _run_cold_points(params, n_steps, workload)
            ]
    assert warm_digests["object"] == warm_digests["array"], (
        "warm kernel-on results must be byte-identical across backends"
    )

    return {
        "n_points": len(params),
        "stair_steps": n_steps,
        "ops_per_point": ["minimum", "minimum", "convolve", "deconvolve"],
        "object_s": times["object"],
        "array_s": times["array"],
        "speedup_array_vs_object": (
            times["object"] / times["array"] if times["array"] > 0 else None
        ),
        "warm_identical_across_backends": True,
    }


def _cold_config(quick: bool) -> "tuple[tuple, int]":
    factors = (1.0, 1.5) if quick else (1.0, 1.25, 1.5, 2.0)
    n_steps = 96 if quick else 128
    return factors, n_steps


def run_benchmark(quick: bool = False) -> dict:
    n_cases = 8 if quick else 24
    factors = (1.0, 1.5) if quick else (1.0, 1.25, 1.5, 2.0)
    cold_factors, cold_steps = _cold_config(quick)
    record = {
        "bench": "nc_ops",
        "version": __version__,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "backend": memo_stats()["backend"],
        "micro": bench_micro_ops(n_cases),
        "upgrade_grid": bench_upgrade_grid(factors),
        "cold_backend": bench_cold_backend(cold_factors, cold_steps),
    }
    return record


def test_kernel_identity_and_hit_rate():
    """Tier-2 guard: on/off identity holds and the warm grid mostly hits.

    Deliberately asserts no wall-clock ratios — timing thresholds live in
    ``main`` where the CI bench step can retry/inspect them.
    """
    record = run_benchmark(quick=True)
    grid = record["upgrade_grid"]
    assert grid["memo_hit_rate"] is not None and grid["memo_hit_rate"] > 0.3
    assert grid["memo_size"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    parser.add_argument(
        "--cold",
        action="store_true",
        help="run only the cold backend section, updating the existing JSON",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail below this warm upgrade_grid speedup (default 1.5, quick 1.2)",
    )
    parser.add_argument(
        "--min-cold-speedup",
        type=float,
        default=None,
        help="fail below this cold array-vs-object speedup (default 5.0, quick 3.0)",
    )
    args = parser.parse_args()
    out = Path(__file__).parent / "BENCH_nc_ops.json"
    cold_floor = (
        args.min_cold_speedup
        if args.min_cold_speedup is not None
        else (3.0 if args.quick else 5.0)
    )

    if args.cold:
        cold_factors, cold_steps = _cold_config(args.quick)
        cold = bench_cold_backend(cold_factors, cold_steps)
        record = json.loads(out.read_text()) if out.exists() else {
            "bench": "nc_ops",
            "version": __version__,
            "quick": args.quick,
            "cpu_count": os.cpu_count(),
        }
        record["cold_backend"] = cold
        record["backend"] = memo_stats()["backend"]
        out.write_text(json.dumps(record, indent=1) + "\n")
        print(json.dumps(cold, indent=1))
        print(f"\n[cold_backend updated in {out}]")
        speedup = cold["speedup_array_vs_object"]
        assert speedup is not None and speedup >= cold_floor, (
            f"cold array-vs-object speedup {speedup:.2f}x below the "
            f"{cold_floor:.1f}x floor"
        )
        print(f"cold array-vs-object speedup {speedup:.2f}x (>= {cold_floor:.1f}x OK)")
        return

    record = run_benchmark(quick=args.quick)
    out.write_text(json.dumps(record, indent=1) + "\n")
    print(json.dumps(record, indent=1))
    print(f"\n[written to {out}]")

    floor = args.min_speedup if args.min_speedup is not None else (1.2 if args.quick else 1.5)
    speedup = record["upgrade_grid"]["speedup_warm_vs_off"]
    assert speedup is not None and speedup >= floor, (
        f"warm-kernel upgrade_grid speedup {speedup:.2f}x regressed below "
        f"the {floor:.1f}x floor"
    )
    print(f"warm upgrade_grid speedup {speedup:.2f}x (>= {floor:.1f}x OK)")
    cold_speedup = record["cold_backend"]["speedup_array_vs_object"]
    assert cold_speedup is not None and cold_speedup >= cold_floor, (
        f"cold array-vs-object speedup {cold_speedup:.2f}x below the "
        f"{cold_floor:.1f}x floor"
    )
    print(
        f"cold array-vs-object speedup {cold_speedup:.2f}x (>= {cold_floor:.1f}x OK)"
    )


if __name__ == "__main__":
    main()
