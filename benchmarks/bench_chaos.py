"""Chaos benchmark: seeded shard kill under load, floors on recovery.

Drives a supervised 3-shard :class:`~repro.cluster.ClusterThread` with
the open-loop bounded-Pareto replayer while a *seeded* fault schedule
SIGKILLs one shard mid-run, then asserts the self-healing story as
floors rather than prose:

* **zero accepted-then-lost** — every offered request was served
  (possibly after mid-request failover) or explicitly 429-shed; no
  transport errors, nothing dropped in the drain;
* **served fraction >= 0.9** with a shard dead mid-run — tenants are
  provisioned inside the *2-shard surviving* envelope, so degraded
  capacity still covers the offered load;
* **MTTR <= 3 x heartbeat_interval** — kill-to-rejoin, measured from
  fault injection to the ring-epoch-bumping re-insertion;
* **ring epoch advanced >= +2** — one bump marking the shard down, one
  rejoining it (the /stats-visible membership history);
* **every sampled tenant p99 <= its degraded-capacity live bound** —
  the FIFO-residual bound the router quoted *while the shard was
  down*, i.e. the promise admission was making during the incident;
* **journal bounce identity** — a fresh router booted over the same
  tenant journal serves an identical tenant table.

Run as a script for the full record (writes ``BENCH_chaos.json``):

    PYTHONPATH=src python benchmarks/bench_chaos.py

``--quick`` is the CI smoke configuration (shorter replay, same
floors).  Under pytest, :func:`test_chaos_quick` runs the quick
configuration.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.apps.blast import blast_pipeline
from repro.cluster import ClusterConfig, ClusterThread, chaos_schedule, run_chaos
from repro.cluster.chaos import tenant_table
from repro.streaming import pipeline_to_dict

MODEL = pipeline_to_dict(blast_pipeline())

SHARDS = 3
# Same per-shard envelope the scale benchmark uses: far under the
# single-core serve ceiling, so admission (not CPU) is what degrades
# when a shard dies.
SHARD_RATE = 40.0
SHARD_BURST = 80.0
TENANTS = ("alpha", "bravo")
# Tenants jointly subscribe ~60% of the SURVIVING (2-shard) envelope:
# 2 * 25 = 50 rps < 80 rps, so the degraded cluster still covers every
# envelope, all live bounds stay finite through the incident, and the
# served-fraction floor is a real promise rather than luck.
TENANT_RATE = 25.0
TENANT_BURST = 12.0
HEARTBEAT_S = 2.0
MTTR_FLOOR_S = 3.0 * HEARTBEAT_S
SERVED_FRACTION_FLOOR = 0.9
POINT_POOL = [{"scale:network": 1.0 + 0.25 * i} for i in range(8)]
CHAOS_SEED = 1789
LOAD_SEED = 42


def run_benchmark(*, duration_s: float = 10.0, offered_rps: float = 30.0) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = str(Path(tmp) / "cache")
        config = ClusterConfig(
            shards=SHARDS,
            workers_per_shard=1,
            calibrate=2,
            shard_rate=SHARD_RATE,
            shard_burst=SHARD_BURST,
            cache_dir=cache_dir,
            heartbeat_interval_s=HEARTBEAT_S,
            probe_timeout_s=1.0,
            supervisor_seed=CHAOS_SEED,
            tenants=[(name, TENANT_RATE, TENANT_BURST, None) for name in TENANTS],
        )
        faults = chaos_schedule(
            seed=CHAOS_SEED,
            duration_s=duration_s,
            shard_names=[f"shard-{i}" for i in range(SHARDS)],
            kills=1,
        )
        t0 = time.perf_counter()
        report = run_chaos(
            config,
            faults,
            model=MODEL,
            duration_s=duration_s,
            rate_rps=offered_rps,
            tenants=[(name, 1.0) for name in TENANTS],
            point_pool=POINT_POOL,
            seed=LOAD_SEED,
            connections=6,
        )
        wall_s = time.perf_counter() - t0

        # the durable-state check: a fresh router over the same journal
        # must serve the identical tenant table the chaos cluster did
        bounce_config = ClusterConfig(
            shards=1,
            workers_per_shard=1,
            calibrate=0,
            cache_dir=cache_dir,
            supervise=False,
        )
        with ClusterThread(bounce_config) as reborn:
            bounced_table = tenant_table(reborn.host, reborn.port)
            reborn.stop()

    victim = next(f.target for f in faults if f.kind == "kill_shard")
    doc = report.to_dict()
    return {
        "bench": "chaos",
        "version": __version__,
        "cpu_count": os.cpu_count(),
        "shards": SHARDS,
        "shard_rate_rps": SHARD_RATE,
        "tenant_rate_rps": TENANT_RATE,
        "heartbeat_interval_s": HEARTBEAT_S,
        "mttr_floor_s": MTTR_FLOOR_S,
        "served_fraction_floor": SERVED_FRACTION_FLOOR,
        "duration_s": duration_s,
        "offered_rps": offered_rps,
        "chaos_seed": CHAOS_SEED,
        "load_seed": LOAD_SEED,
        "victim": victim,
        "wall_s": wall_s,
        "journal_bounce_identical": bounced_table == report.tenant_table,
        "report": doc,
    }


def _assert_floors(record: dict) -> None:
    doc = record["report"]
    victim = record["victim"]
    assert doc["accepted_then_lost"] == 0, (
        f"{doc['accepted_then_lost']} request(s) were accepted then lost "
        f"(replay errors {doc['replay']['errors']}, drain {doc['drain']})"
    )
    assert doc["served_fraction"] >= record["served_fraction_floor"], (
        f"served fraction {doc['served_fraction']:.3f} < "
        f"{record['served_fraction_floor']} with {victim} killed mid-run"
    )
    assert doc["recovered"], f"cluster never healed: {doc['recovery_s']}"
    mttr = doc["recovery_s"][victim]
    assert mttr is not None and mttr <= record["mttr_floor_s"], (
        f"MTTR {mttr}s exceeds {record['mttr_floor_s']}s "
        f"(3 x heartbeat {record['heartbeat_interval_s']}s)"
    )
    assert doc["ring_epoch_final"] >= doc["ring_epoch_initial"] + 2, (
        f"ring epoch moved {doc['ring_epoch_initial']} -> "
        f"{doc['ring_epoch_final']}; expected a down bump and a rejoin bump"
    )
    assert doc["supervisor"]["restarts_total"] >= 1, doc["supervisor"]
    assert doc["drain"]["clean"], f"drain was not clean: {doc['drain']}"
    verdicts = doc["p99_under_degraded_bound"]
    for name in TENANTS:
        tenant = doc["replay"]["tenants"].get(name, {})
        if not tenant.get("ok"):
            continue  # no served samples, nothing to hold a p99 against
        assert verdicts.get(name) is True, (
            f"tenant {name} p99 {tenant.get('p99_s')}s exceeds its "
            f"degraded-capacity bound "
            f"{doc['degraded_bounds_s'].get(name) or doc['final_bounds_s'].get(name)}s"
        )
    assert record["journal_bounce_identical"], (
        "a router bounced over the same journal served a different "
        "tenant table"
    )


def test_chaos_quick():
    """Tier-2 guard: the CI smoke configuration with full floors."""
    record = run_benchmark(duration_s=5.0, offered_rps=24.0)
    _assert_floors(record)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter replay (CI smoke); identical floors",
    )
    args = parser.parse_args()
    if args.quick:
        record = run_benchmark(duration_s=5.0, offered_rps=24.0)
    else:
        record = run_benchmark()
    out = Path(__file__).parent / "BENCH_chaos.json"
    out.write_text(json.dumps(record, indent=1) + "\n")
    print(json.dumps(record, indent=1))
    print(f"\n[written to {out}]")
    _assert_floors(record)
    doc = record["report"]
    mttr = doc["recovery_s"][record["victim"]]
    print(
        f"killed {record['victim']} at t="
        f"{doc['faults'][0]['applied_at_s']:.2f}s: served fraction "
        f"{doc['served_fraction']:.3f} (floor {record['served_fraction_floor']}), "
        f"0 accepted-then-lost, MTTR {mttr:.2f}s <= {record['mttr_floor_s']:.1f}s, "
        f"ring epoch {doc['ring_epoch_initial']} -> {doc['ring_epoch_final']}, "
        f"all sampled tenant p99s under their degraded-capacity bounds, "
        f"journal bounce identical"
    )


if __name__ == "__main__":
    main()
