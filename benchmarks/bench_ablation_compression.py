"""Ablation: sensitivity of the bump-in-the-wire bounds to compression.

Sweeps the best-case compression ratio and reports how the NC bounds
and the simulated throughput move — the §5 mechanism (service curves
scaled by the achieved ratio) made quantitative.  The lower bound must
be ratio-independent (it lives in the ratio-1.0 worst case); the upper
bound and the best-scenario simulation must scale with the ratio until
the source rate caps them.
"""

import dataclasses

import pytest

from repro.apps.bump_in_the_wire import bitw_pipeline
from repro.streaming import VolumeRatio, analyze, simulate
from repro.units import MiB


def _with_ratio(max_ratio: float):
    pipe = bitw_pipeline()
    vr = VolumeRatio.from_compression(
        avg_ratio=min(2.2, max_ratio), min_ratio=1.0, max_ratio=max_ratio
    )
    comp = pipe.stages[pipe.stage_index("compress")]
    pipe = pipe.with_stage("compress", dataclasses.replace(comp, volume_ratio=vr))
    dec = pipe.stages[pipe.stage_index("decompress")]
    pipe = pipe.with_stage("decompress", dataclasses.replace(dec, volume_ratio=vr.inverse()))
    return pipe


def _sweep():
    out = []
    for ratio in (1.0, 2.0, 3.0, 5.3, 8.0):
        pipe = _with_ratio(ratio)
        rep = analyze(pipe, packetized=False)
        sim = simulate(pipe, workload=1 * MiB, seed=1, scenario="best")
        out.append(
            (ratio, rep.throughput_lower_bound, rep.throughput_upper_bound,
             sim.steady_state_throughput)
        )
    return out


def test_compression_ratio_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print("\nratio   lower(MiB/s)  upper(MiB/s)  best-case sim(MiB/s)")
    for ratio, lo, hi, sim in rows:
        print(f"{ratio:5.1f}  {lo / MiB:12.1f}  {hi / MiB:12.1f}  {sim / MiB:12.1f}")

    lowers = [r[1] for r in rows]
    uppers = [r[2] for r in rows]
    sims = [r[3] for r in rows]
    # lower bound is the incompressible worst case: ratio-independent
    assert max(lowers) - min(lowers) < 1e-6
    # upper bound scales with the ratio until the 313 MiB/s source caps it
    assert uppers[0] == pytest.approx(75 * MiB)  # encrypt max, no compression
    assert uppers[1] == pytest.approx(150 * MiB)  # 75 x 2
    assert uppers[-1] == pytest.approx(313 * MiB)  # source-capped
    # best-scenario simulated throughput rides the same scaling
    assert sims[1] > sims[0] * 1.6
    for (_, lo, hi, sim) in rows:
        assert lo * 0.98 <= sim <= hi * 1.02
