"""Cost of the telemetry hooks, off and on.

Three kernels run the same event workload:

* **bare** — an ``Environment`` subclass whose ``step()`` omits the
  tracer branch entirely (what the kernel would cost had the hook
  never been added);
* **off** — the stock kernel with ``tracer=None`` (every untraced run:
  the branch is taken but falls through);
* **on** — the stock kernel feeding a ring-buffer :class:`Tracer`.

The off-path delta (off vs bare) is the price *all* simulations pay
for observability and must stay under 2%; the on-path delta is the
recorded (not asserted) cost of actually tracing.

Run as a script to emit machine-readable timings —

    PYTHONPATH=src python benchmarks/bench_trace.py

writes ``BENCH_trace.json`` next to this file.  Under pytest the same
workloads run through pytest-benchmark.
"""

import heapq
import json
import platform
import time
from pathlib import Path

from repro.apps.bump_in_the_wire import bitw_simulation
from repro.des import Environment
from repro.telemetry import Tracer
from repro.units import MiB

#: events per kernel-throughput run (large enough that per-run jitter
#: is small against the loop body)
N_EVENTS = 20_000


class BareEnvironment(Environment):
    """The DES kernel as it was before the tracer hook existed."""

    def step(self) -> None:
        if not self._heap:
            from repro.des.core import SimulationError

            raise SimulationError("step() on an empty schedule")
        t, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = t
        callbacks = event.callbacks
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            raise event._value


def _event_storm(env: Environment, n_events: int = N_EVENTS) -> float:
    def proc(env):
        for _ in range(n_events):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    return env.now


def _time(thunk, repeat: int = 9) -> dict:
    """Best/mean wall seconds over ``repeat`` runs (after one warmup).

    Overhead comparisons use ``min_s``: the best run is the least
    noise-contaminated estimate of the true cost.
    """
    thunk()
    samples = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        samples.append(time.perf_counter() - t0)
    return {
        "min_s": min(samples),
        "mean_s": sum(samples) / len(samples),
        "runs": repeat,
    }


def _overhead(base: dict, other: dict) -> float:
    """Relative slowdown of ``other`` vs ``base`` (0.02 == +2%)."""
    return other["min_s"] / base["min_s"] - 1.0


def _time_interleaved(a, b, repeat: int = 25) -> tuple[dict, dict]:
    """Time two thunks with alternating samples, so cache state and
    frequency drift hit both alike (fairer than back-to-back blocks)."""
    a(), b()
    sa, sb = [], []
    for _ in range(repeat):
        t0 = time.perf_counter()
        a()
        sa.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        b()
        sb.append(time.perf_counter() - t0)
    mk = lambda s: {"min_s": min(s), "mean_s": sum(s) / len(s), "runs": repeat}
    return mk(sa), mk(sb)


def _offpath_overhead(trials: int = 3) -> tuple[float, dict, dict]:
    """Off-path overhead (untraced stock kernel vs hook-free kernel).

    Scheduler noise only ever *inflates* a wall-clock sample, so the
    smallest overhead across a few independent trials is the least
    biased estimate of the branch's true cost.
    """
    best = None
    for _ in range(trials):
        bare, off = _time_interleaved(
            lambda: _event_storm(BareEnvironment()),
            lambda: _event_storm(Environment()),
        )
        cand = (_overhead(bare, off), bare, off)
        if best is None or cand[0] < best[0]:
            best = cand
        if best[0] < 0.02:
            break
    return best


# --------------------------------------------------------------------- #
# pytest mode
# --------------------------------------------------------------------- #


def test_kernel_bare(benchmark):
    assert benchmark(lambda: _event_storm(BareEnvironment())) == N_EVENTS


def test_kernel_untraced(benchmark):
    assert benchmark(lambda: _event_storm(Environment())) == N_EVENTS


def test_kernel_traced(benchmark):
    def run():
        tracer = Tracer(kernel_events=True)
        return _event_storm(Environment(tracer=tracer))

    assert benchmark(run) == N_EVENTS


def test_pipeline_traced(benchmark):
    def run():
        return bitw_simulation(workload=MiB // 2, probe=Tracer())

    assert benchmark(run).output_bytes > 0


def test_offpath_overhead_under_2_percent():
    """The guard: an untraced kernel must cost within 2% of one with
    no hook at all.  Samples interleave the two kernels (so cache and
    frequency drift hit both alike) and compare best-of-N, the least
    noise-contaminated estimate of true cost."""
    overhead, bare, off = _offpath_overhead()
    assert overhead < 0.02, (
        f"off-path tracer hook costs {overhead:.1%} "
        f"(bare {bare['min_s']:.6f}s vs untraced {off['min_s']:.6f}s)"
    )


# --------------------------------------------------------------------- #
# script mode: machine-readable timings
# --------------------------------------------------------------------- #


def main() -> None:
    from repro import __version__

    off_path, bare, off = _offpath_overhead()
    timings = {
        "kernel_bare": bare,
        "kernel_untraced": off,
        "kernel_traced": _time(
            lambda: _event_storm(Environment(tracer=Tracer(kernel_events=True)))
        ),
        "pipeline_untraced": _time(
            lambda: bitw_simulation(workload=MiB // 2)
        ),
        "pipeline_traced": _time(
            lambda: bitw_simulation(workload=MiB // 2, probe=Tracer())
        ),
    }
    record = {
        "bench": "trace",
        "version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "n_events": N_EVENTS,
        "timings": timings,
        "overhead": {
            "off_path_kernel": off_path,
            "off_path_budget": 0.02,
            "on_path_kernel": _overhead(
                timings["kernel_bare"], timings["kernel_traced"]
            ),
            "on_path_pipeline": _overhead(
                timings["pipeline_untraced"], timings["pipeline_traced"]
            ),
        },
    }
    assert off_path < 0.02, f"off-path overhead {off_path:.1%} exceeds budget"
    out = Path(__file__).parent / "BENCH_trace.json"
    out.write_text(json.dumps(record, indent=1) + "\n")
    print(json.dumps(record, indent=1))
    print(f"\n[written to {out}]")


if __name__ == "__main__":
    main()
