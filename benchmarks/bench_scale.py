"""Cluster scaling benchmark: capacity vs shard count under replayed load.

Drives a real :class:`~repro.cluster.ClusterThread` (spawned shard
processes, consistent-hash router, tenant registry) at 1, 2 and 4
shards with the *same* open-loop heavy-tailed schedule and records:

* aggregate served throughput per shard count — on this class of
  container the shards share one core, so scaling is **capacity
  provisioned**: each shard carries an explicit ``--shard-rate``
  admission envelope and tenants are provisioned to ~70% of the
  cluster's summed envelope.  Adding shards adds admitted capacity
  (the paper's aggregation model, Sec. 3), not CPU parallelism;
* digest-affinity cache effectiveness — the router hashes the same
  content digest the caches key on, so repeated points must hit the
  shard-local cache (>= 0.7 per shard with traffic);
* per-tenant observed p99 against the router's *live* per-tenant FIFO
  residual delay bound from ``/capacity`` — the paper's
  bound-vs-observed methodology applied to the cluster itself.

Run as a script for the full record (writes ``BENCH_scale.json``):

    PYTHONPATH=src python benchmarks/bench_scale.py

``--quick`` runs 1 and 2 shards with a shorter replay (the CI smoke
configuration, >= 1.2x floor).  Under pytest, the quick configuration
keeps the invariants covered cheaply.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.apps.blast import blast_pipeline
from repro.cluster import ClusterConfig, ClusterThread, build_schedule, replay
from repro.serve import ServeClient
from repro.streaming import pipeline_to_dict

MODEL = pipeline_to_dict(blast_pipeline())

# Per-shard admission envelope (requests/s).  40 rps/shard is far under
# the single-core serve ceiling (~600 rps warm), so the envelope — not
# the CPU — is the binding constraint at every shard count and the
# scaling measurement stays honest on a one-core container.
SHARD_RATE = 40.0
SHARD_BURST = 80.0
TENANTS = ("alpha", "bravo")
# Tenants jointly subscribe ~70% of the summed shard envelopes, keeping
# sum(alpha_i) strictly inside beta so every live bound stays finite.
TENANT_SUBSCRIPTION = 0.70
TENANT_BURST = 12.0
# 12 distinct points: enough to spread over 4 shards (every shard owns
# at least one under the canonical ring), few enough that replays are
# dominated by repeats and the affinity hit rate is measurable.
POINT_POOL = [{"scale:network": 1.0 + 0.25 * i} for i in range(12)]


def _quantile(sorted_xs: list[float], q: float) -> float:
    if not sorted_xs:
        return float("nan")
    idx = min(len(sorted_xs) - 1, int(q * (len(sorted_xs) - 1) + 0.5))
    return sorted_xs[idx]


def _shard_cache_rates(stats: dict) -> dict[str, float | None]:
    """Per-shard cache hit rate from the rolled-up ``/stats`` document."""
    rates: dict[str, float | None] = {}
    for name, doc in stats["shards"].items():
        if doc is None:
            rates[name] = None
            continue
        cache = doc.get("cache") or {}
        total = cache.get("hits", 0) + cache.get("misses", 0)
        rates[name] = cache["hits"] / total if total else None
    return rates


def _run_scale_point(
    shards: int,
    *,
    duration_s: float,
    offered_rps: float,
    cache_root: Path,
    seed: int = 42,
) -> dict:
    """One cluster at ``shards`` shards, replaying the canonical load."""
    tenant_rate = TENANT_SUBSCRIPTION * SHARD_RATE * shards / len(TENANTS)
    config = ClusterConfig(
        shards=shards,
        workers_per_shard=1,
        calibrate=2,
        shard_rate=SHARD_RATE,
        shard_burst=SHARD_BURST,
        cache_dir=str(cache_root / f"shards-{shards}"),
        tenants=[(name, tenant_rate, TENANT_BURST, None) for name in TENANTS],
    )
    schedule = build_schedule(
        duration_s=duration_s,
        rate_rps=offered_rps,
        tenants=[(name, 1.0) for name in TENANTS],
        point_pool=POINT_POOL,
        seed=seed,
    )
    t0 = time.perf_counter()
    with ClusterThread(config) as handle:
        startup_s = time.perf_counter() - t0
        report = replay(
            handle.host, handle.port, schedule, model=MODEL, connections=6
        )
        with ServeClient(handle.host, handle.port, connect_retries=4) as c:
            capacity = c.capacity()["result"]
            stats = c.stats()["result"]
        summary = handle.stop()
    assert summary["clean"], f"drain dropped requests: {summary}"

    live_bounds = {
        doc["name"]: doc["delay_bound_s"]
        for doc in capacity["tenants"]["tenants"]
    }
    tenants = {}
    for name in TENANTS:
        doc = dict(report.per_tenant.get(name, {}))
        doc["live_delay_bound_s"] = live_bounds.get(name)
        doc["p99_under_bound"] = (
            doc.get("p99_s") is not None
            and doc["live_delay_bound_s"] is not None
            and doc["p99_s"] <= doc["live_delay_bound_s"]
        )
        tenants[name] = doc

    cache_rates = _shard_cache_rates(stats)
    active_rates = [r for r in cache_rates.values() if r is not None]
    return {
        "shards": shards,
        "tenant_rate_rps": tenant_rate,
        "offered": report.offered,
        "offered_rps": report.offered_rps,
        "ok": report.ok,
        "rejected": report.rejected,
        "errors": report.errors,
        "served_rps": report.served_rps,
        "cluster_rate_rps": capacity["cluster_service_curve"]["rate_rps"],
        "aggregate_delay_bound_s": capacity["tenants"]["aggregate"][
            "delay_bound_s"
        ],
        "cache_hit_rate_per_shard": cache_rates,
        "min_cache_hit_rate": min(active_rates) if active_rates else None,
        "tenants": tenants,
        "startup_s": startup_s,
    }


def run_benchmark(
    *,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    duration_s: float = 4.0,
    offered_rps: float = 160.0,
) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        points = [
            _run_scale_point(
                n,
                duration_s=duration_s,
                offered_rps=offered_rps,
                cache_root=Path(tmp),
            )
            for n in shard_counts
        ]
    base = points[0]["served_rps"]
    top = points[-1]["served_rps"]
    return {
        "bench": "scale",
        "version": __version__,
        "cpu_count": os.cpu_count(),
        "shard_rate_rps": SHARD_RATE,
        "tenant_subscription": TENANT_SUBSCRIPTION,
        "duration_s": duration_s,
        "offered_rps": offered_rps,
        "distinct_points": len(POINT_POOL),
        "points": points,
        "throughput_ratio": top / base if base else None,
        "errors": sum(p["errors"] for p in points),
    }


def _assert_floors(record: dict, *, ratio_floor: float) -> None:
    assert record["errors"] == 0, f"replay saw transport errors: {record}"
    assert record["throughput_ratio"] >= ratio_floor, (
        f"served throughput scaled {record['throughput_ratio']:.2f}x from "
        f"{record['points'][0]['shards']} to {record['points'][-1]['shards']} "
        f"shards; expected >= {ratio_floor}x"
    )
    for point in record["points"]:
        assert point["ok"] + point["rejected"] == point["offered"], point
        for name, rate in point["cache_hit_rate_per_shard"].items():
            assert rate is not None and rate >= 0.7, (
                f"{point['shards']}-shard run: {name} cache hit rate "
                f"{rate} < 0.7 — digest affinity is not landing repeats "
                "on the owning shard"
            )
        for name, doc in point["tenants"].items():
            if not doc.get("ok"):
                continue
            assert doc["p99_under_bound"], (
                f"{point['shards']}-shard run: tenant {name} observed p99 "
                f"{doc['p99_s']:.4f}s exceeds its live bound "
                f"{doc['live_delay_bound_s']}s"
            )


def test_scale_quick():
    """Tier-2 guard: 1 -> 2 shards must scale served capacity >= 1.2x."""
    record = run_benchmark(
        shard_counts=(1, 2), duration_s=2.0, offered_rps=90.0
    )
    _assert_floors(record, ratio_floor=1.2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="1 and 2 shards with a short replay (CI smoke; >= 1.2x floor)",
    )
    args = parser.parse_args()
    if args.quick:
        record = run_benchmark(
            shard_counts=(1, 2), duration_s=2.0, offered_rps=90.0
        )
        ratio_floor = 1.2
    else:
        record = run_benchmark()
        ratio_floor = 2.5
    out = Path(__file__).parent / "BENCH_scale.json"
    out.write_text(json.dumps(record, indent=1) + "\n")
    print(json.dumps(record, indent=1))
    print(f"\n[written to {out}]")
    _assert_floors(record, ratio_floor=ratio_floor)
    lines = []
    for point in record["points"]:
        lines.append(
            f"{point['shards']} shard(s): {point['served_rps']:.1f} served "
            f"req/s of {point['offered_rps']:.1f} offered, min cache hit "
            f"rate {point['min_cache_hit_rate']:.0%}"
        )
    print("; ".join(lines))
    print(
        f"scaling {record['throughput_ratio']:.2f}x >= {ratio_floor}x, "
        "all tenant p99s under their live NC bounds"
    )


if __name__ == "__main__":
    main()
