"""Regenerates Figure 10: bump-in-the-wire model curves vs simulation.

As in the paper, the maximum service curve is omitted from the plot;
the check is the same shape property as Fig. 4 — simulated output
bracketed by ``beta(t)`` and ``alpha(t)``.
"""

import numpy as np

from repro.units import MiB
from repro.viz import figure10


def test_figure10(benchmark):
    fig = benchmark(figure10, workload=2 * MiB)
    print()
    print(fig.ascii())

    sim_t, sim_y = fig.series["simulation"]
    alpha_t, alpha_y = fig.series["alpha(t)"]
    beta_t, beta_y = fig.series["beta'(t)"]

    alpha_at_sim = np.interp(sim_t, alpha_t, alpha_y)
    beta_at_sim = np.interp(sim_t, beta_t, beta_y)
    assert np.all(sim_y <= alpha_at_sim * 1.001 + 0.01)
    assert np.all(sim_y >= beta_at_sim * 0.999 - 0.01)

    assert 37.0 <= fig.annotations["delay_bound_us"] <= 39.0
    assert 2.9 <= fig.annotations["backlog_bound_KiB"] <= 3.1
    assert 56.0 <= fig.annotations["sim_throughput_MiB_s"] <= 70.0
