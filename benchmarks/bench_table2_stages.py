"""Regenerates Table 2: per-stage throughputs and compression ratios.

Two parts:

1. the *configured* stage table as the model consumes it (checked
   against the paper's printed averages);
2. the *methodology demonstration*: drive the real pure-Python LZ4 and
   AES kernels in isolation over a ratio-ladder corpus and report the
   same (min/avg/max throughput, min/avg/max ratio) statistics the
   paper measured on the Vitis kernels.  Absolute rates are interpreter
   rates, not FPGA rates; the *shape* must hold — compression far
   faster than AES, ratio spread straddling 1x-to-several-x.
"""

import numpy as np

from repro.calibration import (
    compressible_text,
    incompressible_bytes,
    measure_throughput,
    ratio_ladder_corpus,
)
from repro.reproduction import format_rows, table2_rows
from repro.substrates.dataproc import (
    cbc_decrypt,
    cbc_encrypt,
    compress_block,
    decompress_block,
    measure_chunked_ratios,
)

from conftest import assert_rows_within

_KEY = bytes(32)
_IV = bytes(16)


def test_table2_configured_rates(benchmark):
    rows = benchmark(table2_rows)
    print()
    print(format_rows("Table 2 — stage throughput (configured, avg)", rows))
    assert_rows_within(
        rows,
        {
            "compress": 0.01,
            "encrypt": 0.01,
            "network": 0.01,
            "decrypt": 0.01,
            "decompress": 0.01,
            "pcie": 0.01,
        },
    )


def test_table2_methodology_on_real_kernels(benchmark):
    chunks = [compressible_text(8192, seed=s, redundancy=0.3 + 0.1 * s) for s in range(5)]
    chunks.append(incompressible_bytes(8192, seed=9))
    pre_compressed = [compress_block(c) for c in chunks]
    pre_encrypted = [cbc_encrypt(_KEY, _IV, c) for c in pre_compressed]

    def run():
        return {
            "compress": measure_throughput("compress", compress_block, chunks, repeats=1),
            "encrypt": measure_throughput(
                "encrypt", lambda d: cbc_encrypt(_KEY, _IV, d), pre_compressed, repeats=1
            ),
            "decrypt": measure_throughput(
                "decrypt", lambda d: cbc_decrypt(_KEY, _IV, d), pre_encrypted, repeats=1
            ),
            "decompress": measure_throughput(
                "decompress",
                lambda d: decompress_block(d, 1 << 20),
                pre_compressed,
                repeats=1,
            ),
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("isolated measurements of the pure-Python kernels:")
    for m in measured.values():
        print(" ", m.summary())
    # Table-2 shape: the codec is much faster than the cipher both ways
    assert measured["compress"].rate_avg > 3 * measured["encrypt"].rate_avg
    assert measured["decompress"].rate_avg > 3 * measured["decrypt"].rate_avg


def test_table2_compression_ratio_statistics(benchmark):
    corpus = ratio_ladder_corpus(chunk=32 * 1024, seed=5)
    blob = b"".join(corpus.values())

    stats = benchmark(measure_chunked_ratios, blob, 1024)
    print()
    print(
        f"chunked (1 KiB) LZ4 ratios over the ladder corpus: "
        f"min {stats.min:.2f} / avg {stats.avg:.2f} / max {stats.max:.2f} "
        f"(paper: 1.0 / 2.2 / 5.3)"
    )
    # shape: worst chunks incompressible-ish, best chunks several-x
    assert stats.min < 1.4
    assert stats.max > 3.0
    assert stats.min < stats.avg < stats.max
    # and the statistics feed straight into the model
    vr = stats.as_volume_ratio()
    assert vr.best < vr.avg < vr.worst
