"""Serving benchmark: throughput, tail latency vs the NC bound, coalescing.

Drives a real :class:`~repro.serve.ServerThread` (sockets, worker pool,
admission) with closed-loop client threads and records:

* sustained throughput (the >= 200 analyze req/s acceptance bar),
* p50/p99 client-observed latency against the server's *self-computed*
  NC delay bound from ``/capacity`` — the paper's bound-vs-observed
  methodology applied to the serving layer itself,
* batch-coalescing gain (mean batch size with a window vs without),
* cache hit rate on a repeated-params phase.

Run as a script for the full record (writes ``BENCH_serve.json``):

    PYTHONPATH=src python benchmarks/bench_serve.py

Under pytest, a scaled-down load keeps the invariants covered cheaply.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from repro import __version__
from repro.apps.blast import blast_pipeline
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.streaming import pipeline_to_dict

MODEL = pipeline_to_dict(blast_pipeline())


def _quantile(sorted_xs: list[float], q: float) -> float:
    if not sorted_xs:
        return float("nan")
    idx = min(len(sorted_xs) - 1, int(q * (len(sorted_xs) - 1) + 0.5))
    return sorted_xs[idx]


def _load_phase(
    host: str,
    port: int,
    *,
    clients: int,
    requests_per_client: int,
    distinct_params: int,
) -> dict:
    """Closed-loop load: each client thread sends its share back to back."""
    latencies: list[float] = []
    oks = [0]
    rejected = [0]
    lock = threading.Lock()

    def worker(offset: int) -> None:
        mine: list[float] = []
        ok = rej = 0
        with ServeClient(host, port, timeout=60.0) as c:
            for i in range(requests_per_client):
                params = {
                    "scale:network": 1.0
                    + ((offset + i) % distinct_params) * 0.125
                }
                t0 = time.perf_counter()
                resp = c.analyze(MODEL, params=params)
                mine.append(time.perf_counter() - t0)
                if resp["ok"]:
                    ok += 1
                elif resp["status"] == 429:
                    rej += 1
                else:
                    raise AssertionError(f"unexpected response: {resp}")
        with lock:
            latencies.extend(mine)
            oks[0] += ok
            rejected[0] += rej

    threads = [
        threading.Thread(target=worker, args=(k * requests_per_client,))
        for k in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0

    latencies.sort()
    n = clients * requests_per_client
    return {
        "requests": n,
        "ok": oks[0],
        "rejected": rejected[0],
        "elapsed_s": elapsed,
        "throughput_rps": n / elapsed if elapsed > 0 else None,
        "p50_s": _quantile(latencies, 0.50),
        "p99_s": _quantile(latencies, 0.99),
        "max_s": latencies[-1] if latencies else None,
    }


def run_benchmark(
    *,
    clients: int = 4,
    requests_per_client: int = 100,
    workers: int | None = None,
    slo_s: float = 0.25,
) -> dict:
    workers = workers if workers is not None else min(4, os.cpu_count() or 1)
    with tempfile.TemporaryDirectory() as tmp:
        # -- phase 1: plain serving, distinct params (cold cache) -------- #
        config = ServeConfig(
            port=0, workers=workers, calibrate=4, slo_s=slo_s,
            cache_dir=str(Path(tmp) / "cache"),
        )
        with ServerThread(config) as srv:
            with ServeClient(srv.host, srv.port) as c:
                cold = _load_phase(
                    srv.host, srv.port,
                    clients=clients,
                    requests_per_client=requests_per_client,
                    distinct_params=clients * requests_per_client,
                )
                capacity = c.capacity()["result"]
                # -- phase 2: repeated params (warm cache) -------------- #
                warm = _load_phase(
                    srv.host, srv.port,
                    clients=clients,
                    requests_per_client=requests_per_client,
                    distinct_params=8,
                )
                stats = c.stats()["result"]
            summary = srv.stop()
        assert summary["clean"], f"drain dropped requests: {summary}"

        cache = stats["cache"]
        hit_rate = (
            cache["hits"] / (cache["hits"] + cache["misses"])
            if cache and (cache["hits"] + cache["misses"])
            else None
        )

        # -- phase 3: coalescing gain (windowed vs pass-through) -------- #
        batch_config = ServeConfig(
            port=0, workers=workers, calibrate=2,
            batch_window_s=0.01, max_batch=32,
        )
        with ServerThread(batch_config) as srv:
            _load_phase(
                srv.host, srv.port,
                clients=clients,
                requests_per_client=requests_per_client // 2,
                distinct_params=64,
            )
            with ServeClient(srv.host, srv.port) as c:
                batching = c.stats()["result"]["batching"]
            srv.stop()

    return {
        "bench": "serve",
        "version": __version__,
        "workers": workers,
        "clients": clients,
        "cpu_count": os.cpu_count(),
        "slo_s": slo_s,
        "cold": cold,
        "warm": warm,
        "nc_delay_bound_s": capacity["delay_bound_s"],
        "nc_service_rate_rps": capacity["service_curve"]["service_rate_rps"],
        "admitted_rate_rps": capacity["arrival_curve"]["rate_rps"],
        "cache_hit_rate": hit_rate,
        "batching": {
            "window_s": batching["window_s"],
            "mean_batch_size": batching["mean_batch_size"],
            "max_batch_seen": batching["max_batch_seen"],
            "coalesced_requests": batching["coalesced_requests"],
        },
        # closed-loop clients self-pace under the admitted rate, so the
        # NC bound for admitted traffic should cover the observed p99
        "p99_under_bound": (
            capacity["delay_bound_s"] is not None
            and cold["p99_s"] <= capacity["delay_bound_s"]
        ),
    }


def test_serve_throughput_and_bound():
    """Tier-2 guard: sustained load, clean drain, p99 under the NC bound."""
    record = run_benchmark(clients=2, requests_per_client=40)
    assert record["cold"]["ok"] + record["cold"]["rejected"] == 80
    assert record["cold"]["throughput_rps"] >= 200.0, (
        f"expected >= 200 analyze req/s, got {record['cold']['throughput_rps']:.0f}"
    )
    assert record["p99_under_bound"], (
        f"p99 {record['cold']['p99_s']:.4f}s exceeds the server's own NC "
        f"bound {record['nc_delay_bound_s']}s"
    )
    # cold phase is all misses, warm phase all hits -> exactly 1/2
    assert record["cache_hit_rate"] is not None and record["cache_hit_rate"] >= 0.5
    assert record["batching"]["mean_batch_size"] >= 1.0


def main() -> None:
    record = run_benchmark()
    out = Path(__file__).parent / "BENCH_serve.json"
    out.write_text(json.dumps(record, indent=1) + "\n")
    print(json.dumps(record, indent=1))
    print(f"\n[written to {out}]")
    assert record["cold"]["throughput_rps"] >= 200.0, (
        f"expected >= 200 analyze req/s, got {record['cold']['throughput_rps']:.0f}"
    )
    assert record["p99_under_bound"], "observed p99 exceeds the self-computed NC bound"
    print(
        f"throughput {record['cold']['throughput_rps']:.0f} req/s, "
        f"p99 {record['cold']['p99_s'] * 1e3:.2f} ms "
        f"<= NC bound {record['nc_delay_bound_s'] * 1e3:.2f} ms, "
        f"cache hit rate {record['cache_hit_rate']:.0%}, "
        f"mean batch {record['batching']['mean_batch_size']:.2f}"
    )


if __name__ == "__main__":
    main()
