"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one paper artifact (table or figure), asserts
the reproduction tolerances, and lets pytest-benchmark time the
regeneration.  Run with ``pytest benchmarks/ --benchmark-only -s`` to
see the rendered tables.
"""

from __future__ import annotations

import math


def assert_rows_within(rows, tolerances: dict[str, float]) -> None:
    """Check each row's relative deviation against a per-quantity bound.

    ``tolerances`` maps a substring of the row's quantity name to the
    allowed |relative deviation|; rows with NaN ``ours`` (external
    measurements) are skipped.
    """
    for row in rows:
        if math.isnan(row.ours):
            continue
        tol = None
        for key, value in tolerances.items():
            if key in row.quantity:
                tol = value
                break
        assert tol is not None, f"no tolerance configured for {row.quantity!r}"
        assert abs(row.deviation) <= tol, (
            f"{row.quantity}: ours deviates {row.deviation:+.1%} from the "
            f"paper (allowed ±{tol:.0%})"
        )
