"""Ablation: what the packetization corrections (§3) change.

Compares the system service curve with and without the
``[beta - l_max]^+`` correction on both applications: packetization
shifts the curve's effective latency by ``l_max / R_beta`` and is what
makes the curve a *valid* output floor for job-granular systems (see
the figure benches).
"""

import numpy as np
import pytest

from repro.apps.blast import blast_pipeline
from repro.apps.bump_in_the_wire import bitw_pipeline
from repro.nc import horizontal_deviation, leaky_bucket
from repro.streaming import build_model
from repro.units import MiB


def _compare(pipeline):
    plain = build_model(pipeline, packetized=False)
    pack = build_model(pipeline, packetized=True)
    l_max = max(s.emit_bytes for s in pack.normalized)
    return plain, pack, l_max


@pytest.mark.parametrize("maker", [blast_pipeline, bitw_pipeline], ids=["blast", "bitw"])
def test_packetization_shifts_latency(benchmark, maker):
    plain, pack, l_max = benchmark(_compare, maker())
    shift = l_max / plain.bottleneck_rate
    print(
        f"\n{plain.pipeline.name}: l_max={l_max:.0f} B -> extra latency "
        f"{shift * 1e3:.3f} ms on top of T_tot={plain.total_latency * 1e3:.3f} ms"
    )
    ts = np.linspace(0.0, plain.total_latency * 4 + shift * 4 + 1e-9, 64)
    plain_v = plain.beta_system(ts)
    pack_v = pack.beta_system(ts)
    # packetized curve is never above the plain one, and is lower by at
    # most l_max
    assert np.all(pack_v <= plain_v + 1e-6)
    assert np.all(plain_v - pack_v <= l_max * (1 + 1e-9))
    # a stable flow's delay bound grows by exactly l_max / R for
    # rate-latency curves
    alpha = leaky_bucket(plain.bottleneck_rate * 0.5, 1 * MiB)
    d_plain = horizontal_deviation(alpha, plain.beta_system)
    d_pack = horizontal_deviation(alpha, pack.beta_system)
    assert d_pack == pytest.approx(d_plain + shift, rel=1e-6)
