"""The bump-in-the-wire case study end to end (paper §5).

1. Exercises the *real* LZ4 and AES-CBC kernels on synthetic corpora,
   measuring compression-ratio statistics exactly the way the paper's
   2.2x/1.0x/5.3x numbers were obtained;
2. reproduces the Table-3 comparison and the §5 delay/backlog
   observations;
3. shows how the data scenario (incompressible vs highly compressible)
   moves the simulated throughput between the bounds.

Run:  python examples/bump_in_the_wire_study.py
"""

from repro.apps.bump_in_the_wire import bitw_simulation
from repro.calibration import ratio_ladder_corpus
from repro.reproduction import bitw_observation_rows, format_rows, table3_rows
from repro.substrates.dataproc import (
    cbc_decrypt,
    cbc_encrypt,
    compress_block,
    decompress_block,
    measure_chunked_ratios,
)
from repro.units import MiB, format_rate


def main() -> None:
    # --- the real kernels --------------------------------------------------
    key, iv = bytes(32), bytes(16)
    corpus = ratio_ladder_corpus(chunk=16 * 1024, seed=3)
    print("LZ4 ratio statistics per corpus (1 KiB chunking):")
    for name, data in corpus.items():
        stats = measure_chunked_ratios(data, 1024)
        print(
            f"  {name:<10} min {stats.min:5.2f}  avg {stats.avg:5.2f}  "
            f"max {stats.max:6.2f}  ({stats.chunks} chunks)"
        )

    # end-to-end data path: compress -> encrypt -> decrypt -> decompress
    payload = corpus["text_mid"]
    comp = compress_block(payload)
    wire = cbc_encrypt(key, iv, comp)
    back = decompress_block(cbc_decrypt(key, iv, wire), len(payload))
    assert back == payload
    print(f"\nround trip ok: {len(payload)} B -> {len(comp)} B compressed "
          f"-> {len(wire)} B on the wire -> restored\n")

    # --- the performance model --------------------------------------------
    print(format_rows("Table 3 — bump-in-the-wire throughput", table3_rows()))
    print()
    print(format_rows("§5 observations", bitw_observation_rows()))

    # --- data-scenario sensitivity ------------------------------------------
    print("\nsimulated throughput by data scenario:")
    for scenario in ("worst", "avg", "best"):
        sim = bitw_simulation(workload=2 * MiB, scenario=scenario)
        print(f"  {scenario:<6} {format_rate(sim.steady_state_throughput)}")
    print("-> compressible data rides the encrypt bottleneck harder, "
          "exactly the effect the scenario-split service curves bound")


if __name__ == "__main__":
    main()
