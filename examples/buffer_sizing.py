"""Buffer sizing and backpressure — the paper's future-work items, working.

The paper's §6 proposes using network calculus "to guide the sizing and
allocation of buffers" and to shape arrivals "to accommodate queues
that are at risk of overflowing".  This example does both on the BLAST
pipeline, and verifies the shaped system in simulation.

Run:  python examples/buffer_sizing.py
"""

from repro.apps.blast import blast_pipeline
from repro.streaming import (
    admissible_source_rate,
    analyze,
    max_rate_for_buffers,
    shaped_source,
    simulate,
    size_buffers,
)
from repro.units import MiB, format_rate


def main() -> None:
    pipeline = blast_pipeline()

    # --- 1. overflow-free buffer plan --------------------------------------
    plan = size_buffers(pipeline, margin=0.25, workload=256 * MiB)
    print(plan.summary())

    # --- 2. the largest feed those buffers can absorb -----------------------
    admissible = admissible_source_rate(pipeline)
    print(f"\nadmissible long-run source rate: {format_rate(admissible)}")
    rate_cap = max_rate_for_buffers(pipeline, plan.buffers)
    print(f"rate cap under the buffer plan:  {format_rate(rate_cap)}")

    # --- 3. shape the source and verify stability ----------------------------
    # A smooth shaped feed never re-fills the job buffers from a standing
    # burst, so every node pays its collection latency: the analysis must
    # use conservative aggregation (the paper's recursion, which lets an
    # upstream burst cover collection, is only valid under backpressure-
    # saturated queues — see DESIGN.md).
    shaped = pipeline.with_source(shaped_source(pipeline, utilization=0.95))
    report = analyze(shaped, packetized=False, conservative_aggregation=True)
    print(f"\nshaped source: {format_rate(shaped.source.rate)} "
          f"(was {format_rate(pipeline.source.rate)})")
    print(f"stable now: {report.stable} — bounds are asymptotic, not transient")
    print(f"delay bound  {report.delay_bound * 1e3:.2f} ms (conservative aggregation)")
    print(f"backlog bound {report.backlog_bound / MiB:.2f} MiB")

    sim = simulate(shaped, workload=128 * MiB, seed=9)
    vd = sim.observed_virtual_delays()
    print("\nsimulation of the shaped system:")
    print(f"  throughput  {format_rate(sim.steady_state_throughput)}")
    print(f"  max delay   {vd.max * 1e3:.2f} ms  (bound {report.delay_bound * 1e3:.2f})")
    print(f"  max backlog {sim.max_backlog_bytes / MiB:.2f} MiB  "
          f"(bound {report.backlog_bound / MiB:.2f})")
    assert vd.max <= report.delay_bound
    assert sim.max_backlog_bytes <= report.backlog_bound
    print("  shaped system honours the asymptotic bounds")


if __name__ == "__main__":
    main()
