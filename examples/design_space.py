"""Design-space exploration with what-if analysis and shaped arrivals.

The paper's conclusion claims the bounds are "tight enough to be
helpful in understanding the performance implications of candidate
design changes"; this example walks that workflow on BLAST:

1. ladder of bottleneck upgrades — where does the next dollar go, and
   when do returns diminish;
2. a concrete candidate (swap the 10 Gb/s network for 25 Gb/s) compared
   side by side;
3. the full upgrade *grid* — every combination of GPU-filter and
   network scaling — evaluated through the ``repro.sweep`` engine
   (run the same exploration from the shell with
   ``repro sweep blast --grid scale:ungapped_ext=1:2:4 ...``);
4. a time-varying (variable-rate) source schedule bounded with the
   exact minimal arrival curve, plus the greedy-shaper view of
   backpressure.

Run:  python examples/design_space.py
"""

from repro.apps.blast import blast_pipeline
from repro.nc import GreedyShaper, leaky_bucket, variable_rate_arrival
from repro.streaming import (
    Stage,
    bottleneck_ladder,
    compare,
    upgrade_grid,
    upgrade_stage,
)
from repro.units import MiB, format_rate


def main() -> None:
    pipeline = blast_pipeline()

    # --- 1. bottleneck ladder ------------------------------------------------
    print("bottleneck-upgrade ladder (x1.5 per step):\n")
    for report in bottleneck_ladder(pipeline, steps=4, factor=1.5, packetized=False):
        print(report.summary())
        print()

    # --- 2. a concrete candidate change --------------------------------------
    faster_net = pipeline.with_stage(
        "network", Stage.link("network", 2980 * MiB, latency=0.02e-3, mtu=64 * 1024)
    )
    report = compare(pipeline, faster_net, change="25 GbE network", packetized=False)
    print(report.summary())
    print("-> the network is not the bottleneck: the model says don't buy it\n")

    # --- 3. the full upgrade grid, via the sweep engine -----------------------
    # every (ungapped_ext, network) scaling combination at once; with
    # jobs=N the points evaluate on worker processes, and a cache dir
    # would skip recomputation across runs (see `repro sweep --help`)
    grid = upgrade_grid(
        pipeline, ["ungapped_ext", "network"], [1.0, 1.5, 2.0], packetized=False
    )
    print("upgrade grid (via repro.sweep):")
    best = max(grid.results, key=lambda r: r.nc["throughput_lower_bound"])
    for r in grid.results:
        marker = "  <- best" if r.index == best.index else ""
        print(
            f"  ungapped x{r.params['scale:ungapped_ext']:<4g} "
            f"network x{r.params['scale:network']:<4g} "
            f"guaranteed {format_rate(r.nc['throughput_lower_bound'])}{marker}"
        )
    print(
        "-> scaling the GPU filter dominates; the network only matters "
        "once the filter is ~2x faster\n"
    )

    # --- 4. variable-rate arrivals and shaping --------------------------------
    # a bursty day/night source schedule: 600 MiB/s for 50 ms, then 200 MiB/s
    alpha_var = variable_rate_arrival([(0.05, 600 * MiB), (0.0, 200 * MiB)])
    print("variable-rate source envelope:")
    print(f"  best 10 ms window: {alpha_var(0.01) / MiB:.1f} MiB "
          f"(rate {format_rate(alpha_var(0.01) / 0.01)})")
    print(f"  long-run rate:     {format_rate(alpha_var.final_slope)}")

    # shape it to what the GPU sustains
    sigma = leaky_bucket(350 * MiB, 4 * MiB)
    shaper = GreedyShaper(sigma)
    print("\ngreedy shaper at the admissible rate (350 MiB/s, 4 MiB bucket):")
    print(f"  shaper buffer needed: {shaper.backlog_bound(alpha_var) / MiB:.2f} MiB")
    print(f"  shaper delay added:   {shaper.delay_bound(alpha_var) * 1e3:.2f} ms")
    shaped = shaper.output_envelope(alpha_var)
    print(f"  shaped envelope rate: {format_rate(shaped.final_slope)} "
          f"(<= sigma rate, system is now stable)")
    assert shaped.final_slope <= 350 * MiB + 1e-6


if __name__ == "__main__":
    main()
