"""Building a new pipeline from substrate models and live measurements.

A downstream-user scenario the paper's intro motivates: you are
planning a streaming deployment — ingest over TCP, LZ4-compress on the
way to storage across PCIe — and want performance bounds *before*
building it.  Stage parameters come from (a) the parameterised link
models and (b) a live isolated measurement of the actual compression
kernel, via the calibration layer.

Run:  python examples/custom_pipeline.py
"""

from repro.calibration import compressible_text, measure_throughput, measurement_to_stage
from repro.streaming import Pipeline, Source, analyze, simulate
from repro.substrates.dataproc import compress_block
from repro.substrates.net import PcieLink, TcpLink
from repro.units import GiB, KiB, MiB, format_rate, format_seconds
from repro.streaming import VolumeRatio


def main() -> None:
    # --- measure the real kernel in isolation ------------------------------
    chunks = [compressible_text(16 * 1024, seed=s, redundancy=0.5 + 0.04 * s)
              for s in range(6)]
    m = measure_throughput("lz4_compress", compress_block, chunks, repeats=2)
    print("isolated measurement:")
    print(" ", m.summary())

    compress_stage = measurement_to_stage(
        m, volume_ratio=VolumeRatio.from_compression(2.0, 1.2, 3.5)
    )

    # --- link models ---------------------------------------------------------
    ingest = TcpLink("ingest_tcp", line_rate=10e9 / 8, rtt=200e-6,
                     window_bytes=256 * KiB)
    storage = PcieLink("storage_pcie", gen=3, lanes=4)
    print("\nlink models:")
    print(f"  {ingest.name}: {format_rate(ingest.effective_rate)} "
          f"(window limit {format_rate(ingest.window_limit)})")
    print(f"  {storage.name}: {format_rate(storage.effective_rate)}")

    # --- assemble and analyze -------------------------------------------------
    pipeline = Pipeline(
        "ingest-compress-store",
        # offered load: 1 MiB bursts at the compressor's average rate / 2
        Source(rate=m.rate_avg / 2, burst=1 * MiB, packet_bytes=64 * KiB),
        [ingest.as_stage(), compress_stage, storage.as_stage()],
    )
    report = analyze(pipeline)
    print()
    print(report.summary())

    # --- validate -------------------------------------------------------------
    sim = simulate(pipeline, workload=4 * MiB, seed=1)
    vd = sim.observed_virtual_delays()
    print("\nsimulation check:")
    print(f"  throughput  {format_rate(sim.steady_state_throughput)}")
    print(f"  max delay   {format_seconds(vd.max)} "
          f"(bound {format_seconds(report.delay_bound)})")
    assert vd.max <= report.delay_bound * 1.001
    print("  within bounds — safe to provision against the model")


if __name__ == "__main__":
    main()
