"""Quickstart: network-calculus bounds for a small streaming pipeline.

Builds a three-stage pipeline from isolated measurements, derives the
throughput/delay/backlog bounds, and validates them against the
discrete-event simulator — the full method of the paper in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro.nc import backlog_bound, delay_bound, leaky_bucket, rate_latency
from repro.streaming import Pipeline, Source, Stage, analyze, simulate
from repro.units import MiB, format_rate, format_seconds


def main() -> None:
    # --- bare curves -----------------------------------------------------
    alpha = leaky_bucket(rate=100 * MiB, burst=4 * MiB)
    beta = rate_latency(rate=150 * MiB, latency=2e-3)
    print("single node:")
    print("  delay bound  ", format_seconds(delay_bound(alpha, beta)))
    print("  backlog bound", format_rate(backlog_bound(alpha, beta)) + " * s")

    # --- a measured pipeline ----------------------------------------------
    pipeline = Pipeline(
        "quickstart",
        Source(rate=100 * MiB, burst=1 * MiB, packet_bytes=64 * 1024),
        [
            Stage("decode", avg_rate=400 * MiB, min_rate=350 * MiB,
                  max_rate=450 * MiB, latency=1e-3, job_bytes=1 * MiB),
            Stage.link("network", 120 * MiB, latency=0.5e-3, mtu=64 * 1024),
            Stage("gpu_kernel", avg_rate=200 * MiB, min_rate=150 * MiB,
                  max_rate=260 * MiB, latency=2e-3, job_bytes=8 * MiB),
        ],
    )

    report = analyze(pipeline)
    print()
    print(report.summary())

    # --- validate against the simulator ------------------------------------
    sim = simulate(pipeline, workload=128 * MiB, seed=0)
    vd = sim.observed_virtual_delays()
    print()
    print("simulation check:")
    print("  throughput   ", format_rate(sim.steady_state_throughput))
    print("  max delay    ", format_seconds(vd.max),
          "<= bound", format_seconds(report.delay_bound))
    print("  max backlog  ", f"{sim.max_backlog_bytes / MiB:.2f} MiB",
          "<= bound", f"{report.backlog_bound / MiB:.2f} MiB")
    assert vd.max <= report.delay_bound
    assert sim.max_backlog_bytes <= report.backlog_bound
    print("  all observations within the network-calculus bounds")


if __name__ == "__main__":
    main()
