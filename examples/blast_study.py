"""The BLAST case study end to end (paper §4).

1. Runs the *functional* BLASTN substrate on synthetic DNA to show the
   irregular filter ratios that motivate the modeling problem;
2. reproduces the Table-1 network-calculus / queueing / simulation
   comparison;
3. prints the per-node backlog contributions the paper highlights as a
   buffer-allocation aid.

Run:  python examples/blast_study.py
"""

from repro.apps.blast import blast_analysis, blast_pipeline, blast_simulation
from repro.calibration import random_dna
from repro.reproduction import blast_observation_rows, format_rows, table1_rows
from repro.substrates.bio import BlastnPipeline
from repro.units import MiB, format_bytes


def main() -> None:
    # --- the actual computation being modeled -----------------------------
    db = random_dna(50_000, seed=11)
    query = db[20_000:20_120]  # a planted 120-base query
    hits, counts = BlastnPipeline(query).search(db)
    print("functional BLASTN on 50 kb synthetic DNA:")
    print(f"  hits: {len(hits)}, best score {max(h.score for h in hits)}")
    print("  per-stage filter ratios (outputs/inputs):")
    for stage, ratio in counts.filter_ratios().items():
        print(f"    {stage:<14} {ratio:8.4f}")
    print("  -> seed matching filters hardest, as the paper describes\n")

    # --- the performance model --------------------------------------------
    print(format_rows("Table 1 — BLAST throughput", table1_rows()))
    print()
    print(format_rows("§4.2 observations", blast_observation_rows()))

    # --- buffer-allocation aid ---------------------------------------------
    report = blast_analysis()
    print("\nper-node backlog contributions (buffer-allocation aid):")
    for node in report.nodes:
        print(f"  {node.name:<14} {format_bytes(node.backlog_contribution)}")

    # --- where does the time go? -------------------------------------------
    sim = blast_simulation(workload=256 * MiB)
    print("\nsimulated stage utilization:")
    for s in sim.stages:
        print(f"  {s.name:<14} {s.utilization:6.1%}")
    print(f"bottleneck: {sim.bottleneck().name}")


if __name__ == "__main__":
    main()
