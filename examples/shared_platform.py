"""Two streaming applications sharing one platform link (multi-flow NC).

The paper's applications each own their hardware; real deployments
co-locate.  This example puts the BLAST network traffic and a telemetry
flow on the same 10 Gb/s link and derives per-flow bounds with residual
service curves — blind multiplexing (no scheduler knowledge), the FIFO
family, and static priority — quantifying what each arbitration policy
costs whom.

Run:  python examples/shared_platform.py
"""

from repro.nc import (
    blind_residual,
    delay_bound,
    fifo_residual_delay_bound,
    leaky_bucket,
    priority_residual,
    rate_latency,
)
from repro.units import KiB, MiB, format_seconds


def main() -> None:
    # the shared 10 Gb/s link (as in the BLAST deployment)
    link = rate_latency(1192 * MiB, 0.02e-3)

    # flow 1: BLAST database traffic (throttled to what the GPU sustains)
    blast = leaky_bucket(353 * MiB, 4 * MiB)
    # flow 2: telemetry / monitoring traffic
    telemetry = leaky_bucket(150 * MiB, 256 * KiB)

    print("dedicated link (no sharing):")
    print(f"  BLAST delay     {format_seconds(delay_bound(blast, link))}")
    print(f"  telemetry delay {format_seconds(delay_bound(telemetry, link))}")

    # --- blind multiplexing: scheduler unknown -----------------------------
    d_blast = delay_bound(blast, blind_residual(link, telemetry))
    d_tel = delay_bound(telemetry, blind_residual(link, blast))
    print("\nblind multiplexing (safe for any work-conserving arbiter):")
    print(f"  BLAST delay     {format_seconds(d_blast)}")
    print(f"  telemetry delay {format_seconds(d_tel)}")

    # --- FIFO: tighter, needs the FIFO assumption ---------------------------
    d_blast_fifo, th1 = fifo_residual_delay_bound(blast, link, telemetry)
    d_tel_fifo, th2 = fifo_residual_delay_bound(telemetry, link, blast)
    print("\nFIFO multiplexing (best theta in the residual family):")
    print(f"  BLAST delay     {format_seconds(d_blast_fifo)} (theta={th1 * 1e3:.2f} ms)")
    print(f"  telemetry delay {format_seconds(d_tel_fifo)} (theta={th2 * 1e3:.2f} ms)")
    assert d_blast_fifo <= d_blast + 1e-12
    assert d_tel_fifo <= d_tel + 1e-12

    # --- static priority for BLAST ------------------------------------------
    # BLAST preempts telemetry except for one in-flight 1500 B frame
    d_blast_prio = delay_bound(blast, priority_residual(link, 1500.0))
    d_tel_prio = delay_bound(telemetry, blind_residual(link, blast))
    print("\nstatic priority (BLAST high, telemetry low):")
    print(f"  BLAST delay     {format_seconds(d_blast_prio)}")
    print(f"  telemetry delay {format_seconds(d_tel_prio)}")
    assert d_blast_prio <= d_blast_fifo

    print(
        "\n-> priority restores BLAST to near-dedicated latency at the cost "
        "of telemetry; FIFO splits the pain; blind is the safe envelope."
    )


if __name__ == "__main__":
    main()
